#include "bayesopt/gp.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "utils/parallel.hpp"

namespace bayesft::bayesopt {

GaussianProcess::GaussianProcess(std::shared_ptr<const Kernel> kernel,
                                 double noise_variance)
    : kernel_(std::move(kernel)), noise_variance_(noise_variance) {
    if (!kernel_) throw std::invalid_argument("GaussianProcess: null kernel");
    if (!(noise_variance >= 0.0)) {
        throw std::invalid_argument("GaussianProcess: negative noise");
    }
}

void GaussianProcess::refresh_targets() {
    double y_mean = 0.0;
    for (double y : ys_) y_mean += y;
    y_mean /= static_cast<double>(ys_.size());
    linalg::Vector centered(ys_.size());
    for (std::size_t i = 0; i < ys_.size(); ++i) {
        centered[i] = ys_[i] - y_mean;
    }
    y_mean_ = y_mean;
    alpha_ = linalg::cholesky_solve(chol_, centered);
    centered_ = std::move(centered);
}

void GaussianProcess::fit(std::vector<Point> xs, std::vector<double> ys) {
    if (xs.empty() || xs.size() != ys.size()) {
        throw std::invalid_argument("GaussianProcess::fit: bad data sizes");
    }
    const std::size_t dims = xs.front().size();
    for (const Point& x : xs) {
        if (x.size() != dims) {
            throw std::invalid_argument(
                "GaussianProcess::fit: inconsistent dimensions");
        }
    }
    // Factorize into locals and commit members only after every throwing
    // step succeeded: a failed fit (ill-conditioned Gram) must leave the
    // previous posterior fully intact, so callers can degrade gracefully
    // by keeping the last-good fit (docs/robustness.md).
    linalg::Matrix k = kernel_->gram(xs);
    k.add_diagonal(noise_variance_);
    double jitter = 0.0;
    linalg::Matrix chol =
        linalg::cholesky_with_jitter_info(std::move(k), jitter);

    xs_ = std::move(xs);
    ys_ = std::move(ys);
    chol_ = std::move(chol);
    jitter_ = jitter;
    refresh_targets();
}

bool GaussianProcess::observe(const Point& x, double y) {
    if (!fitted()) return false;
    if (x.size() != xs_.front().size()) {
        throw std::invalid_argument(
            "GaussianProcess::observe: dimension mismatch");
    }
    // The append recurrence reproduces cholesky()'s last row against the
    // *unjittered* Gram; a factor that needed jitter has no O(n^2) path
    // that stays bit-identical to the canonical fit() — fall back.
    if (jitter_ != 0.0) return false;
    const linalg::Vector kx = kernel_->cross(x, xs_);
    const double diag = (*kernel_)(x, x) + noise_variance_;
    if (!linalg::cholesky_append_row(chol_, kx, diag)) return false;
    xs_.push_back(x);
    ys_.push_back(y);
    refresh_targets();
    return true;
}

void GaussianProcess::update_target(std::size_t i, double y) {
    if (!fitted()) {
        throw std::logic_error("GaussianProcess::update_target: not fitted");
    }
    if (i >= ys_.size()) {
        throw std::out_of_range(
            "GaussianProcess::update_target: index out of range");
    }
    // The factorization depends only on the xs; a refit with the updated
    // targets would rebuild the identical factor, so only the target side
    // is recomputed.  Valid at any jitter level for the same reason.
    ys_[i] = y;
    refresh_targets();
}

void GaussianProcess::truncate(std::size_t n) {
    if (n == 0 || n > xs_.size()) {
        throw std::invalid_argument("GaussianProcess::truncate: bad size");
    }
    if (jitter_ != 0.0) {
        throw std::logic_error(
            "GaussianProcess::truncate: factor carries jitter");
    }
    if (n == xs_.size()) return;
    xs_.resize(n);
    ys_.resize(n);
    linalg::cholesky_truncate(chol_, n);
    refresh_targets();
}

Posterior GaussianProcess::posterior(const Point& x) const {
    if (!fitted()) {
        throw std::logic_error("GaussianProcess::posterior: not fitted");
    }
    const linalg::Vector kx = kernel_->cross(x, xs_);
    Posterior post;
    post.mean = y_mean_ + linalg::dot(kx, alpha_);
    // sigma2 = k(x,x) - v^T v with v = L^-1 kx.
    const linalg::Vector v = linalg::solve_lower(chol_, kx);
    const double prior_var = (*kernel_)(x, x);
    post.variance = std::max(0.0, prior_var - linalg::dot(v, v));
    return post;
}

std::vector<Posterior> GaussianProcess::posterior_batch(
    const std::vector<Point>& queries) const {
    if (!fitted()) {
        throw std::logic_error("GaussianProcess::posterior_batch: not fitted");
    }
    const std::size_t m = queries.size();
    std::vector<Posterior> out(m);
    if (m == 0) return out;
    const std::size_t n = xs_.size();
    linalg::Matrix kq = kernel_->cross_matrix(queries, xs_);
    // Means before the in-place solve consumes the cross block.  Each row
    // is the exact dot(kx, alpha) loop of the per-point path.
    const std::size_t grain = std::max<std::size_t>(1, 1024 / (n + 1));
    parallel_for(0, m, grain, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t r = lo; r < hi; ++r) {
            const double* row = kq.data() + r * n;
            double acc = 0.0;
            for (std::size_t i = 0; i < n; ++i) acc += row[i] * alpha_[i];
            out[r].mean = y_mean_ + acc;
        }
    });
    // One multi-RHS forward solve for every candidate's v = L^-1 kx.
    linalg::solve_lower_multi_inplace(chol_, kq);
    parallel_for(0, m, grain, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t r = lo; r < hi; ++r) {
            const double* row = kq.data() + r * n;
            double vv = 0.0;
            for (std::size_t i = 0; i < n; ++i) vv += row[i] * row[i];
            const double prior_var = (*kernel_)(queries[r], queries[r]);
            out[r].variance = std::max(0.0, prior_var - vv);
        }
    });
    return out;
}

double GaussianProcess::log_marginal_likelihood() const {
    if (!fitted()) {
        throw std::logic_error(
            "GaussianProcess::log_marginal_likelihood: not fitted");
    }
    const double fit_term = -0.5 * linalg::dot(centered_, alpha_);
    const double det_term = -0.5 * linalg::log_det_from_cholesky(chol_);
    const double norm_term = -0.5 * static_cast<double>(ys_.size()) *
                             std::log(2.0 * std::numbers::pi);
    return fit_term + det_term + norm_term;
}

}  // namespace bayesft::bayesopt
