#include "bayesopt/gp.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace bayesft::bayesopt {

GaussianProcess::GaussianProcess(std::shared_ptr<const Kernel> kernel,
                                 double noise_variance)
    : kernel_(std::move(kernel)), noise_variance_(noise_variance) {
    if (!kernel_) throw std::invalid_argument("GaussianProcess: null kernel");
    if (!(noise_variance >= 0.0)) {
        throw std::invalid_argument("GaussianProcess: negative noise");
    }
}

void GaussianProcess::fit(std::vector<Point> xs, std::vector<double> ys) {
    if (xs.empty() || xs.size() != ys.size()) {
        throw std::invalid_argument("GaussianProcess::fit: bad data sizes");
    }
    const std::size_t dims = xs.front().size();
    for (const Point& x : xs) {
        if (x.size() != dims) {
            throw std::invalid_argument(
                "GaussianProcess::fit: inconsistent dimensions");
        }
    }
    // Factorize into locals and commit members only after every throwing
    // step succeeded: a failed fit (ill-conditioned Gram) must leave the
    // previous posterior fully intact, so callers can degrade gracefully
    // by keeping the last-good fit (docs/robustness.md).
    double y_mean = 0.0;
    for (double y : ys) y_mean += y;
    y_mean /= static_cast<double>(ys.size());

    linalg::Matrix k = kernel_->gram(xs);
    k.add_diagonal(noise_variance_);
    linalg::Matrix chol = linalg::cholesky_with_jitter(std::move(k));

    linalg::Vector centered(ys.size());
    for (std::size_t i = 0; i < ys.size(); ++i) {
        centered[i] = ys[i] - y_mean;
    }
    linalg::Vector alpha = linalg::cholesky_solve(chol, centered);

    xs_ = std::move(xs);
    ys_ = std::move(ys);
    y_mean_ = y_mean;
    chol_ = std::move(chol);
    alpha_ = std::move(alpha);
}

Posterior GaussianProcess::posterior(const Point& x) const {
    if (!fitted()) {
        throw std::logic_error("GaussianProcess::posterior: not fitted");
    }
    const linalg::Vector kx = kernel_->cross(x, xs_);
    Posterior post;
    post.mean = y_mean_ + linalg::dot(kx, alpha_);
    // sigma2 = k(x,x) - v^T v with v = L^-1 kx.
    const linalg::Vector v = linalg::solve_lower(chol_, kx);
    const double prior_var = (*kernel_)(x, x);
    post.variance = std::max(0.0, prior_var - linalg::dot(v, v));
    return post;
}

double GaussianProcess::log_marginal_likelihood() const {
    if (!fitted()) {
        throw std::logic_error(
            "GaussianProcess::log_marginal_likelihood: not fitted");
    }
    linalg::Vector centered(ys_.size());
    for (std::size_t i = 0; i < ys_.size(); ++i) {
        centered[i] = ys_[i] - y_mean_;
    }
    const double fit_term = -0.5 * linalg::dot(centered, alpha_);
    const double det_term = -0.5 * linalg::log_det_from_cholesky(chol_);
    const double norm_term = -0.5 * static_cast<double>(ys_.size()) *
                             std::log(2.0 * std::numbers::pi);
    return fit_term + det_term + norm_term;
}

}  // namespace bayesft::bayesopt
