#include "bayesopt/kernel.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "utils/parallel.hpp"

namespace bayesft::bayesopt {

linalg::Matrix Kernel::gram(const std::vector<Point>& xs) const {
    const std::size_t n = xs.size();
    linalg::Matrix k(n, n);
    if (n < 128) {
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = 0; j <= i; ++j) {
                const double v = (*this)(xs[i], xs[j]);
                k(i, j) = v;
                k(j, i) = v;
            }
        }
        return k;
    }
    // Pool-parallel fill: each chunk owns whole rows of the lower
    // triangle (disjoint outputs), then a second pass mirrors it.  Every
    // element is the same single kernel evaluation the serial loop makes,
    // so the matrix is bit-identical at every thread count.
    parallel_for(0, n, 8, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
            for (std::size_t j = 0; j <= i; ++j) {
                k(i, j) = (*this)(xs[i], xs[j]);
            }
        }
    });
    parallel_for(0, n, 8, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
            for (std::size_t j = i + 1; j < n; ++j) k(i, j) = k(j, i);
        }
    });
    return k;
}

linalg::Vector Kernel::cross(const Point& x,
                             const std::vector<Point>& xs) const {
    linalg::Vector v(xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i) v[i] = (*this)(x, xs[i]);
    return v;
}

linalg::Matrix Kernel::cross_matrix(const std::vector<Point>& queries,
                                    const std::vector<Point>& xs) const {
    const std::size_t m = queries.size();
    const std::size_t n = xs.size();
    linalg::Matrix c(m, n);
    // Row r is exactly cross(queries[r], xs); rows have disjoint outputs,
    // so the split over the pool is bit-deterministic.
    const std::size_t grain = std::max<std::size_t>(1, 1024 / (n + 1));
    parallel_for(0, m, grain, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t r = lo; r < hi; ++r) {
            for (std::size_t i = 0; i < n; ++i) {
                c(r, i) = (*this)(queries[r], xs[i]);
            }
        }
    });
    return c;
}

ArdSquaredExponential::ArdSquaredExponential(
    std::vector<double> inverse_length_scales, double amplitude)
    : inv_scales_(std::move(inverse_length_scales)), amplitude_(amplitude) {
    if (inv_scales_.empty()) {
        throw std::invalid_argument("ArdSquaredExponential: empty scales");
    }
    for (double k : inv_scales_) {
        if (!(k > 0.0)) {
            throw std::invalid_argument(
                "ArdSquaredExponential: inverse length scales must be > 0");
        }
    }
    if (!(amplitude > 0.0)) {
        throw std::invalid_argument(
            "ArdSquaredExponential: amplitude must be > 0");
    }
}

ArdSquaredExponential::ArdSquaredExponential(std::size_t dims,
                                             double inv_scale,
                                             double amplitude)
    : ArdSquaredExponential(std::vector<double>(dims, inv_scale), amplitude) {}

double ArdSquaredExponential::operator()(const Point& a,
                                         const Point& b) const {
    if (a.size() != inv_scales_.size() || b.size() != inv_scales_.size()) {
        throw std::invalid_argument(
            "ArdSquaredExponential: dimension mismatch");
    }
    double exponent = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        exponent += inv_scales_[i] * d * d;
    }
    return amplitude_ * std::exp(-exponent);
}

std::string ArdSquaredExponential::describe() const {
    std::ostringstream os;
    os << "ARD-SE(d=" << inv_scales_.size() << ", k0=" << amplitude_ << ")";
    return os.str();
}

namespace {

/// Argmax coordinate of one one-hot block (first winner on ties).
std::size_t block_argmax(const Point& p, const CategoricalBlock& block) {
    std::size_t best = block.offset;
    for (std::size_t i = block.offset + 1;
         i < block.offset + block.cardinality; ++i) {
        if (p[i] > p[best]) best = i;
    }
    return best - block.offset;
}

}  // namespace

MixedArdSquaredExponential::MixedArdSquaredExponential(
    std::vector<double> inverse_length_scales,
    std::vector<CategoricalBlock> blocks, double hamming_weight,
    double amplitude)
    : inv_scales_(std::move(inverse_length_scales)),
      blocks_(std::move(blocks)),
      is_categorical_(inv_scales_.size(), 0),
      hamming_weight_(hamming_weight),
      amplitude_(amplitude) {
    if (inv_scales_.empty()) {
        throw std::invalid_argument("MixedArdSE: empty scales");
    }
    if (!(hamming_weight > 0.0)) {
        throw std::invalid_argument("MixedArdSE: hamming_weight must be > 0");
    }
    if (!(amplitude > 0.0)) {
        throw std::invalid_argument("MixedArdSE: amplitude must be > 0");
    }
    std::size_t next_free = 0;
    for (const CategoricalBlock& block : blocks_) {
        if (block.cardinality < 2 || block.offset < next_free ||
            block.offset + block.cardinality > inv_scales_.size()) {
            throw std::invalid_argument(
                "MixedArdSE: malformed categorical blocks");
        }
        next_free = block.offset + block.cardinality;
        for (std::size_t i = block.offset;
             i < block.offset + block.cardinality; ++i) {
            is_categorical_[i] = 1;
        }
    }
    for (std::size_t i = 0; i < inv_scales_.size(); ++i) {
        if (!is_categorical_[i] && !(inv_scales_[i] > 0.0)) {
            throw std::invalid_argument(
                "MixedArdSE: numeric inverse length scales must be > 0");
        }
    }
}

double MixedArdSquaredExponential::operator()(const Point& a,
                                              const Point& b) const {
    if (a.size() != inv_scales_.size() || b.size() != inv_scales_.size()) {
        throw std::invalid_argument("MixedArdSE: dimension mismatch");
    }
    double exponent = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (is_categorical_[i]) continue;
        const double d = a[i] - b[i];
        exponent += inv_scales_[i] * d * d;
    }
    for (const CategoricalBlock& block : blocks_) {
        if (block_argmax(a, block) != block_argmax(b, block)) {
            exponent += hamming_weight_;
        }
    }
    return amplitude_ * std::exp(-exponent);
}

std::string MixedArdSquaredExponential::describe() const {
    std::ostringstream os;
    os << "MixedARD-SE(d=" << inv_scales_.size() << ", cat="
       << blocks_.size() << ", lambda=" << hamming_weight_
       << ", k0=" << amplitude_ << ")";
    return os.str();
}

Matern52::Matern52(double length_scale, double amplitude)
    : length_scale_(length_scale), amplitude_(amplitude) {
    if (!(length_scale > 0.0) || !(amplitude > 0.0)) {
        throw std::invalid_argument("Matern52: parameters must be > 0");
    }
}

double Matern52::operator()(const Point& a, const Point& b) const {
    if (a.size() != b.size()) {
        throw std::invalid_argument("Matern52: dimension mismatch");
    }
    double sq = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        sq += d * d;
    }
    const double r = std::sqrt(sq) / length_scale_;
    const double sqrt5_r = std::sqrt(5.0) * r;
    return amplitude_ * (1.0 + sqrt5_r + 5.0 / 3.0 * r * r) *
           std::exp(-sqrt5_r);
}

std::string Matern52::describe() const {
    std::ostringstream os;
    os << "Matern52(l=" << length_scale_ << ", k0=" << amplitude_ << ")";
    return os.str();
}

}  // namespace bayesft::bayesopt
