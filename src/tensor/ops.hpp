#pragma once
// Structured tensor operations: matrix products, transposes, im2col/col2im
// (the workhorses behind Conv2d), and row-wise reductions used by losses and
// accuracy computation.

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <vector>

#include "tensor/tensor.hpp"

namespace bayesft {

/// C = A @ B for A:[m,k], B:[k,n] -> C:[m,n].
/// Register-blocked, cache-tiled, and parallelized over tile-aligned panels
/// of C via the global thread pool; bit-identical for any thread count.
Tensor matmul(const Tensor& a, const Tensor& b);

/// C += A @ B on raw row-major buffers (A:[m,k], B:[k,n], C:[m,n], leading
/// dimensions equal to the logical widths).  The blocked kernel behind
/// matmul and the batched convolution path, exposed so layers can reuse
/// persistent scratch buffers instead of allocating per call.
void gemm_accumulate(const float* a, const float* b, float* c, std::size_t m,
                     std::size_t k, std::size_t n);

/// C = A^T @ B for A:[k,m], B:[k,n] -> C:[m,n] (no explicit transpose).
Tensor matmul_tn(const Tensor& a, const Tensor& b);

/// C = A @ B^T for A:[m,k], B:[n,k] -> C:[m,n] (no explicit transpose).
Tensor matmul_nt(const Tensor& a, const Tensor& b);

/// Transposed copy of a 2-d tensor.
Tensor transpose(const Tensor& a);

/// Cache-blocked raw-buffer transpose: dst[j, i] = src[i, j] for src:[m,n].
void transpose_into(const float* src, std::size_t m, std::size_t n,
                    float* dst);

/// Element-type-generic variant of transpose_into (same tiling); used by
/// the fixed-point conv path to transpose int16 code matrices.
template <typename T>
void transpose_into_t(const T* src, std::size_t m, std::size_t n, T* dst) {
    constexpr std::size_t kTile = 32;
    for (std::size_t i0 = 0; i0 < m; i0 += kTile) {
        const std::size_t i1 = std::min(m, i0 + kTile);
        for (std::size_t j0 = 0; j0 < n; j0 += kTile) {
            const std::size_t j1 = std::min(n, j0 + kTile);
            for (std::size_t i = i0; i < i1; ++i) {
                for (std::size_t j = j0; j < j1; ++j) {
                    dst[j * m + i] = src[i * n + j];
                }
            }
        }
    }
}

/// Geometry of a 2-d convolution / pooling window sweep.
struct ConvGeometry {
    std::size_t channels = 0;
    std::size_t in_h = 0;
    std::size_t in_w = 0;
    std::size_t kernel_h = 0;
    std::size_t kernel_w = 0;
    std::size_t stride = 1;
    std::size_t pad = 0;

    std::size_t out_h() const {
        return (in_h + 2 * pad - kernel_h) / stride + 1;
    }
    std::size_t out_w() const {
        return (in_w + 2 * pad - kernel_w) / stride + 1;
    }
    /// Throws std::invalid_argument if the window does not fit.
    void validate() const;
};

/// Unfolds one image [C,H,W] (given as a flat pointer) into a matrix
/// [C*kh*kw, out_h*out_w].  Out-of-bounds (padding) positions read as 0.
/// `out` must have out_rows() x out_cols() elements.
void im2col(const float* image, const ConvGeometry& g, float* out);

/// Strided variant: writes the unfolded image into a sub-block of a wider
/// row-major matrix whose rows are `out_stride` floats apart.  This lets a
/// whole batch share one [C*kh*kw, N*out_h*out_w] scratch matrix, with
/// sample s occupying the column slice starting at s*out_h*out_w.
void im2col(const float* image, const ConvGeometry& g, float* out,
            std::size_t out_stride);

/// Generic unfold behind both im2col overloads, templated on the element
/// type so the fixed-point forward pass (nn/quant.hpp) can unfold int16
/// quantized codes with the same geometry.  For stride == 1 the valid
/// input columns of each output row form one contiguous span, so the
/// inner loop collapses to zero-fill / memcpy / zero-fill — this is the
/// vectorized packing path; stride > 1 falls back to the gather loop.
template <typename T>
void im2col_into(const T* image, const ConvGeometry& g, T* out,
                 std::size_t out_stride) {
    const std::size_t oh = g.out_h(), ow = g.out_w();
    const std::ptrdiff_t in_h = static_cast<std::ptrdiff_t>(g.in_h);
    const std::ptrdiff_t in_w = static_cast<std::ptrdiff_t>(g.in_w);
    std::size_t row = 0;
    for (std::size_t c = 0; c < g.channels; ++c) {
        const T* plane = image + c * g.in_h * g.in_w;
        for (std::size_t ky = 0; ky < g.kernel_h; ++ky) {
            for (std::size_t kx = 0; kx < g.kernel_w; ++kx, ++row) {
                T* dst = out + row * out_stride;
                if (g.stride == 1) {
                    // ix = ox + kx - pad: valid ox span is [x_lo, x_hi).
                    const std::ptrdiff_t x_off =
                        static_cast<std::ptrdiff_t>(kx) -
                        static_cast<std::ptrdiff_t>(g.pad);
                    const std::size_t x_lo = std::min(
                        ow, x_off < 0 ? static_cast<std::size_t>(-x_off)
                                      : std::size_t{0});
                    const std::ptrdiff_t hi = in_w - x_off;
                    const std::size_t x_hi =
                        hi <= static_cast<std::ptrdiff_t>(x_lo)
                            ? x_lo
                            : std::min(ow, static_cast<std::size_t>(hi));
                    for (std::size_t oy = 0; oy < oh; ++oy) {
                        const std::ptrdiff_t iy =
                            static_cast<std::ptrdiff_t>(oy + ky) -
                            static_cast<std::ptrdiff_t>(g.pad);
                        T* drow = dst + oy * ow;
                        if (iy < 0 || iy >= in_h) {
                            std::fill(drow, drow + ow, T{});
                            continue;
                        }
                        std::fill(drow, drow + x_lo, T{});
                        if (x_hi > x_lo) {
                            std::memcpy(
                                drow + x_lo,
                                plane + static_cast<std::size_t>(iy) * g.in_w +
                                    static_cast<std::size_t>(
                                        static_cast<std::ptrdiff_t>(x_lo) +
                                        x_off),
                                (x_hi - x_lo) * sizeof(T));
                        }
                        std::fill(drow + x_hi, drow + ow, T{});
                    }
                    continue;
                }
                for (std::size_t oy = 0; oy < oh; ++oy) {
                    // Signed because padding can place the window off-image.
                    const std::ptrdiff_t iy =
                        static_cast<std::ptrdiff_t>(oy * g.stride + ky) -
                        static_cast<std::ptrdiff_t>(g.pad);
                    const bool y_ok = iy >= 0 && iy < in_h;
                    for (std::size_t ox = 0; ox < ow; ++ox) {
                        const std::ptrdiff_t ix =
                            static_cast<std::ptrdiff_t>(ox * g.stride + kx) -
                            static_cast<std::ptrdiff_t>(g.pad);
                        const bool x_ok = ix >= 0 && ix < in_w;
                        dst[oy * ow + ox] =
                            (y_ok && x_ok)
                                ? plane[static_cast<std::size_t>(iy) * g.in_w +
                                        static_cast<std::size_t>(ix)]
                                : T{};
                    }
                }
            }
        }
    }
}

/// Adjoint of im2col: folds the column matrix back, accumulating into
/// `image_grad` (which must be pre-zeroed by the caller when appropriate).
void col2im(const float* cols, const ConvGeometry& g, float* image_grad);

/// Strided variant matching the strided im2col layout.
void col2im(const float* cols, const ConvGeometry& g, float* image_grad,
            std::size_t cols_stride);

/// Rows of a [N, F] tensor: index of the max entry per row.
std::vector<std::size_t> argmax_rows(const Tensor& logits);

/// Row-wise softmax of a [N, F] tensor (numerically stabilized).
Tensor softmax_rows(const Tensor& logits);

/// Row-wise log-softmax of a [N, F] tensor.
Tensor log_softmax_rows(const Tensor& logits);

/// Classification accuracy of logits [N, K] against labels (size N), in [0,1].
double accuracy(const Tensor& logits, const std::vector<int>& labels);

}  // namespace bayesft
