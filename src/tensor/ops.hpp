#pragma once
// Structured tensor operations: matrix products, transposes, im2col/col2im
// (the workhorses behind Conv2d), and row-wise reductions used by losses and
// accuracy computation.

#include <cstddef>
#include <vector>

#include "tensor/tensor.hpp"

namespace bayesft {

/// C = A @ B for A:[m,k], B:[k,n] -> C:[m,n].
/// Register-blocked, cache-tiled, and parallelized over tile-aligned panels
/// of C via the global thread pool; bit-identical for any thread count.
Tensor matmul(const Tensor& a, const Tensor& b);

/// C += A @ B on raw row-major buffers (A:[m,k], B:[k,n], C:[m,n], leading
/// dimensions equal to the logical widths).  The blocked kernel behind
/// matmul and the batched convolution path, exposed so layers can reuse
/// persistent scratch buffers instead of allocating per call.
void gemm_accumulate(const float* a, const float* b, float* c, std::size_t m,
                     std::size_t k, std::size_t n);

/// C = A^T @ B for A:[k,m], B:[k,n] -> C:[m,n] (no explicit transpose).
Tensor matmul_tn(const Tensor& a, const Tensor& b);

/// C = A @ B^T for A:[m,k], B:[n,k] -> C:[m,n] (no explicit transpose).
Tensor matmul_nt(const Tensor& a, const Tensor& b);

/// Transposed copy of a 2-d tensor.
Tensor transpose(const Tensor& a);

/// Cache-blocked raw-buffer transpose: dst[j, i] = src[i, j] for src:[m,n].
void transpose_into(const float* src, std::size_t m, std::size_t n,
                    float* dst);

/// Geometry of a 2-d convolution / pooling window sweep.
struct ConvGeometry {
    std::size_t channels = 0;
    std::size_t in_h = 0;
    std::size_t in_w = 0;
    std::size_t kernel_h = 0;
    std::size_t kernel_w = 0;
    std::size_t stride = 1;
    std::size_t pad = 0;

    std::size_t out_h() const {
        return (in_h + 2 * pad - kernel_h) / stride + 1;
    }
    std::size_t out_w() const {
        return (in_w + 2 * pad - kernel_w) / stride + 1;
    }
    /// Throws std::invalid_argument if the window does not fit.
    void validate() const;
};

/// Unfolds one image [C,H,W] (given as a flat pointer) into a matrix
/// [C*kh*kw, out_h*out_w].  Out-of-bounds (padding) positions read as 0.
/// `out` must have out_rows() x out_cols() elements.
void im2col(const float* image, const ConvGeometry& g, float* out);

/// Strided variant: writes the unfolded image into a sub-block of a wider
/// row-major matrix whose rows are `out_stride` floats apart.  This lets a
/// whole batch share one [C*kh*kw, N*out_h*out_w] scratch matrix, with
/// sample s occupying the column slice starting at s*out_h*out_w.
void im2col(const float* image, const ConvGeometry& g, float* out,
            std::size_t out_stride);

/// Adjoint of im2col: folds the column matrix back, accumulating into
/// `image_grad` (which must be pre-zeroed by the caller when appropriate).
void col2im(const float* cols, const ConvGeometry& g, float* image_grad);

/// Strided variant matching the strided im2col layout.
void col2im(const float* cols, const ConvGeometry& g, float* image_grad,
            std::size_t cols_stride);

/// Rows of a [N, F] tensor: index of the max entry per row.
std::vector<std::size_t> argmax_rows(const Tensor& logits);

/// Row-wise softmax of a [N, F] tensor (numerically stabilized).
Tensor softmax_rows(const Tensor& logits);

/// Row-wise log-softmax of a [N, F] tensor.
Tensor log_softmax_rows(const Tensor& logits);

/// Classification accuracy of logits [N, K] against labels (size N), in [0,1].
double accuracy(const Tensor& logits, const std::vector<int>& labels);

}  // namespace bayesft
