#pragma once
// Structured tensor operations: matrix products, transposes, im2col/col2im
// (the workhorses behind Conv2d), and row-wise reductions used by losses and
// accuracy computation.

#include <cstddef>
#include <vector>

#include "tensor/tensor.hpp"

namespace bayesft {

/// C = A @ B for A:[m,k], B:[k,n] -> C:[m,n].
Tensor matmul(const Tensor& a, const Tensor& b);

/// C = A^T @ B for A:[k,m], B:[k,n] -> C:[m,n] (no explicit transpose).
Tensor matmul_tn(const Tensor& a, const Tensor& b);

/// C = A @ B^T for A:[m,k], B:[n,k] -> C:[m,n] (no explicit transpose).
Tensor matmul_nt(const Tensor& a, const Tensor& b);

/// Transposed copy of a 2-d tensor.
Tensor transpose(const Tensor& a);

/// Geometry of a 2-d convolution / pooling window sweep.
struct ConvGeometry {
    std::size_t channels = 0;
    std::size_t in_h = 0;
    std::size_t in_w = 0;
    std::size_t kernel_h = 0;
    std::size_t kernel_w = 0;
    std::size_t stride = 1;
    std::size_t pad = 0;

    std::size_t out_h() const {
        return (in_h + 2 * pad - kernel_h) / stride + 1;
    }
    std::size_t out_w() const {
        return (in_w + 2 * pad - kernel_w) / stride + 1;
    }
    /// Throws std::invalid_argument if the window does not fit.
    void validate() const;
};

/// Unfolds one image [C,H,W] (given as a flat pointer) into a matrix
/// [C*kh*kw, out_h*out_w].  Out-of-bounds (padding) positions read as 0.
/// `out` must have out_rows() x out_cols() elements.
void im2col(const float* image, const ConvGeometry& g, float* out);

/// Adjoint of im2col: folds the column matrix back, accumulating into
/// `image_grad` (which must be pre-zeroed by the caller when appropriate).
void col2im(const float* cols, const ConvGeometry& g, float* image_grad);

/// Rows of a [N, F] tensor: index of the max entry per row.
std::vector<std::size_t> argmax_rows(const Tensor& logits);

/// Row-wise softmax of a [N, F] tensor (numerically stabilized).
Tensor softmax_rows(const Tensor& logits);

/// Row-wise log-softmax of a [N, F] tensor.
Tensor log_softmax_rows(const Tensor& logits);

/// Classification accuracy of logits [N, K] against labels (size N), in [0,1].
double accuracy(const Tensor& logits, const std::vector<int>& labels);

}  // namespace bayesft
