#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/gemm.hpp"

namespace bayesft {

namespace {

void require_rank2(const Tensor& t, const char* who) {
    if (t.rank() != 2) {
        throw std::invalid_argument(std::string(who) + ": expected rank-2, got " +
                                    shape_to_string(t.shape()));
    }
}

}  // namespace

void transpose_into(const float* src, std::size_t m, std::size_t n,
                    float* dst) {
    constexpr std::size_t kTile = 32;
    for (std::size_t i0 = 0; i0 < m; i0 += kTile) {
        const std::size_t i1 = std::min(m, i0 + kTile);
        for (std::size_t j0 = 0; j0 < n; j0 += kTile) {
            const std::size_t j1 = std::min(n, j0 + kTile);
            for (std::size_t i = i0; i < i1; ++i) {
                for (std::size_t j = j0; j < j1; ++j) {
                    dst[j * m + i] = src[i * n + j];
                }
            }
        }
    }
}

void gemm_accumulate(const float* a, const float* b, float* c, std::size_t m,
                     std::size_t k, std::size_t n) {
    detail::gemm_parallel(a, k, b, n, c, n, m, k, n);
}

namespace {

/// C = A @ B (overwrite): skips the read-modify-write of the accumulate
/// form for ops that produce a fresh output.
void gemm_overwrite(const float* a, const float* b, float* c, std::size_t m,
                    std::size_t k, std::size_t n) {
    detail::gemm_parallel_f32(a, k, b, n, c, n, m, k, n, false);
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
    require_rank2(a, "matmul(a)");
    require_rank2(b, "matmul(b)");
    const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
    if (b.dim(0) != k) {
        throw std::invalid_argument("matmul: inner dims " +
                                    shape_to_string(a.shape()) + " x " +
                                    shape_to_string(b.shape()));
    }
    Tensor c({m, n});
    gemm_overwrite(a.data(), b.data(), c.data(), m, k, n);
    return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
    require_rank2(a, "matmul_tn(a)");
    require_rank2(b, "matmul_tn(b)");
    const std::size_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
    if (b.dim(0) != k) {
        throw std::invalid_argument("matmul_tn: inner dims " +
                                    shape_to_string(a.shape()) + " x " +
                                    shape_to_string(b.shape()));
    }
    // Materializing A^T costs O(km) against the O(kmn) product and lets the
    // blocked kernel stream contiguous rows.
    Tensor at({m, k});
    transpose_into(a.data(), k, m, at.data());
    Tensor c({m, n});
    gemm_overwrite(at.data(), b.data(), c.data(), m, k, n);
    return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
    require_rank2(a, "matmul_nt(a)");
    require_rank2(b, "matmul_nt(b)");
    const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
    if (b.dim(1) != k) {
        throw std::invalid_argument("matmul_nt: inner dims " +
                                    shape_to_string(a.shape()) + " x " +
                                    shape_to_string(b.shape()));
    }
    Tensor bt({k, n});
    transpose_into(b.data(), n, k, bt.data());
    Tensor c({m, n});
    gemm_overwrite(a.data(), bt.data(), c.data(), m, k, n);
    return c;
}

Tensor transpose(const Tensor& a) {
    require_rank2(a, "transpose");
    const std::size_t m = a.dim(0), n = a.dim(1);
    Tensor t({n, m});
    transpose_into(a.data(), m, n, t.data());
    return t;
}

void ConvGeometry::validate() const {
    if (channels == 0 || in_h == 0 || in_w == 0 || kernel_h == 0 ||
        kernel_w == 0 || stride == 0) {
        throw std::invalid_argument("ConvGeometry: zero extent");
    }
    if (in_h + 2 * pad < kernel_h || in_w + 2 * pad < kernel_w) {
        throw std::invalid_argument("ConvGeometry: kernel larger than padded input");
    }
}

void im2col(const float* image, const ConvGeometry& g, float* out) {
    im2col(image, g, out, g.out_h() * g.out_w());
}

void im2col(const float* image, const ConvGeometry& g, float* out,
            std::size_t out_stride) {
    im2col_into(image, g, out, out_stride);
}

void col2im(const float* cols_mat, const ConvGeometry& g, float* image_grad) {
    col2im(cols_mat, g, image_grad, g.out_h() * g.out_w());
}

void col2im(const float* cols_mat, const ConvGeometry& g, float* image_grad,
            std::size_t cols_stride) {
    const std::size_t oh = g.out_h(), ow = g.out_w();
    const std::size_t cols = cols_stride;
    std::size_t row = 0;
    for (std::size_t c = 0; c < g.channels; ++c) {
        float* plane = image_grad + c * g.in_h * g.in_w;
        for (std::size_t ky = 0; ky < g.kernel_h; ++ky) {
            for (std::size_t kx = 0; kx < g.kernel_w; ++kx, ++row) {
                const float* src = cols_mat + row * cols;
                for (std::size_t oy = 0; oy < oh; ++oy) {
                    const std::ptrdiff_t iy =
                        static_cast<std::ptrdiff_t>(oy * g.stride + ky) -
                        static_cast<std::ptrdiff_t>(g.pad);
                    if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(g.in_h)) {
                        continue;
                    }
                    for (std::size_t ox = 0; ox < ow; ++ox) {
                        const std::ptrdiff_t ix =
                            static_cast<std::ptrdiff_t>(ox * g.stride + kx) -
                            static_cast<std::ptrdiff_t>(g.pad);
                        if (ix < 0 ||
                            ix >= static_cast<std::ptrdiff_t>(g.in_w)) {
                            continue;
                        }
                        plane[static_cast<std::size_t>(iy) * g.in_w +
                              static_cast<std::size_t>(ix)] +=
                            src[oy * ow + ox];
                    }
                }
            }
        }
    }
}

std::vector<std::size_t> argmax_rows(const Tensor& logits) {
    require_rank2(logits, "argmax_rows");
    const std::size_t n = logits.dim(0), f = logits.dim(1);
    if (f == 0) throw std::invalid_argument("argmax_rows: zero-width rows");
    std::vector<std::size_t> out(n);
    for (std::size_t i = 0; i < n; ++i) {
        const float* row = logits.data() + i * f;
        out[i] = static_cast<std::size_t>(
            std::max_element(row, row + f) - row);
    }
    return out;
}

Tensor softmax_rows(const Tensor& logits) {
    Tensor out = log_softmax_rows(logits);
    for (float& v : out.values()) v = std::exp(v);
    return out;
}

Tensor log_softmax_rows(const Tensor& logits) {
    require_rank2(logits, "log_softmax_rows");
    const std::size_t n = logits.dim(0), f = logits.dim(1);
    Tensor out({n, f});
    for (std::size_t i = 0; i < n; ++i) {
        const float* row = logits.data() + i * f;
        float* dst = out.data() + i * f;
        const float row_max = *std::max_element(row, row + f);
        double denom = 0.0;
        for (std::size_t j = 0; j < f; ++j) {
            denom += std::exp(static_cast<double>(row[j] - row_max));
        }
        const float log_denom = static_cast<float>(std::log(denom));
        for (std::size_t j = 0; j < f; ++j) {
            dst[j] = row[j] - row_max - log_denom;
        }
    }
    return out;
}

double accuracy(const Tensor& logits, const std::vector<int>& labels) {
    if (logits.dim(0) != labels.size()) {
        throw std::invalid_argument("accuracy: batch size mismatch");
    }
    if (labels.empty()) return 0.0;
    const auto pred = argmax_rows(logits);
    std::size_t hits = 0;
    for (std::size_t i = 0; i < labels.size(); ++i) {
        if (pred[i] == static_cast<std::size_t>(labels[i])) ++hits;
    }
    return static_cast<double>(hits) / static_cast<double>(labels.size());
}

}  // namespace bayesft
