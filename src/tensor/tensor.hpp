#pragma once
// Dense row-major float tensor.  This is the numeric substrate for the whole
// neural-network stack: activations, weights, gradients, and images are all
// `Tensor`s.  Shapes follow the PyTorch convention the paper uses:
// images are [N, C, H, W], fully-connected activations are [N, F].

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "utils/rng.hpp"

namespace bayesft {

/// N-dimensional row-major float tensor with value semantics.
///
/// The class deliberately stays small: storage + shape + elementwise math.
/// Structured operations (matmul, im2col, reductions over axes) live in
/// tensor/ops.hpp as free functions, per C++ Core Guidelines C.4.
class Tensor {
public:
    /// Empty tensor (rank 0, no elements).
    Tensor() = default;

    /// Tensor of the given shape, filled with `fill`.
    explicit Tensor(std::vector<std::size_t> shape, float fill = 0.0F);

    /// Tensor of the given shape adopting `values` (size must match).
    Tensor(std::vector<std::size_t> shape, std::vector<float> values);

    // -- Factories ---------------------------------------------------------

    static Tensor zeros(std::vector<std::size_t> shape);
    static Tensor ones(std::vector<std::size_t> shape);
    static Tensor full(std::vector<std::size_t> shape, float value);
    /// I.i.d. N(0, stddev^2) entries.
    static Tensor randn(std::vector<std::size_t> shape, Rng& rng,
                        float stddev = 1.0F);
    /// I.i.d. U[lo, hi) entries.
    static Tensor uniform(std::vector<std::size_t> shape, Rng& rng, float lo,
                          float hi);

    // -- Shape -------------------------------------------------------------

    const std::vector<std::size_t>& shape() const { return shape_; }
    std::size_t rank() const { return shape_.size(); }
    /// Extent of dimension `axis`; throws std::out_of_range if invalid.
    std::size_t dim(std::size_t axis) const;
    /// Total number of elements.
    std::size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    /// Returns a copy with a new shape of equal element count.
    /// One extent may be 0 meaning "infer this dimension".
    Tensor reshaped(std::vector<std::size_t> new_shape) const;

    /// In-place reshape (same element count; one extent may be 0 = infer).
    void reshape(std::vector<std::size_t> new_shape);

    // -- Element access ----------------------------------------------------

    float& operator[](std::size_t i) { return data_[i]; }
    float operator[](std::size_t i) const { return data_[i]; }

    float& at(std::size_t i);
    float at(std::size_t i) const;

    /// 2-d indexed access; bounds-checked in debug logic via flat_index.
    float& operator()(std::size_t i, std::size_t j);
    float operator()(std::size_t i, std::size_t j) const;
    float& operator()(std::size_t i, std::size_t j, std::size_t k);
    float operator()(std::size_t i, std::size_t j, std::size_t k) const;
    float& operator()(std::size_t i, std::size_t j, std::size_t k,
                      std::size_t l);
    float operator()(std::size_t i, std::size_t j, std::size_t k,
                     std::size_t l) const;

    float* data() { return data_.data(); }
    const float* data() const { return data_.data(); }
    std::span<float> values() { return data_; }
    std::span<const float> values() const { return data_; }

    // -- Elementwise math (in place, returning *this for chaining) ---------

    Tensor& fill(float value);
    Tensor& add_(const Tensor& other);
    Tensor& sub_(const Tensor& other);
    Tensor& mul_(const Tensor& other);  ///< Hadamard product.
    Tensor& div_(const Tensor& other);
    Tensor& add_scalar_(float value);
    Tensor& mul_scalar_(float value);
    /// this += scale * other (axpy).
    Tensor& axpy_(float scale, const Tensor& other);
    Tensor& clamp_(float lo, float hi);

    // -- Elementwise math (value-returning) --------------------------------

    friend Tensor operator+(Tensor lhs, const Tensor& rhs);
    friend Tensor operator-(Tensor lhs, const Tensor& rhs);
    friend Tensor operator*(Tensor lhs, const Tensor& rhs);
    friend Tensor operator*(Tensor lhs, float rhs);
    friend Tensor operator*(float lhs, Tensor rhs);

    // -- Whole-tensor reductions -------------------------------------------

    float sum() const;
    float mean() const;
    float min() const;
    float max() const;
    /// Squared L2 norm of all entries.
    float squared_norm() const;

    /// True if shapes and all entries are exactly equal.
    bool equals(const Tensor& other) const;
    /// True if shapes equal and entries are within `tol` of each other.
    bool allclose(const Tensor& other, float tol = 1e-5F) const;

    /// "[2, 3] {1.0, 2.0, ...}" style description (truncated for big tensors).
    std::string to_string() const;

private:
    std::size_t flat_index(std::size_t i, std::size_t j) const;
    std::size_t flat_index(std::size_t i, std::size_t j, std::size_t k) const;
    std::size_t flat_index(std::size_t i, std::size_t j, std::size_t k,
                           std::size_t l) const;
    void check_same_shape(const Tensor& other, const char* op) const;

    std::vector<std::size_t> shape_;
    std::vector<float> data_;
};

/// Number of elements implied by a shape (product of extents; 1 for rank 0).
std::size_t shape_size(const std::vector<std::size_t>& shape);

/// Human-readable "[2, 3, 4]" form.
std::string shape_to_string(const std::vector<std::size_t>& shape);

}  // namespace bayesft
