#pragma once
// Cache-tiled, thread-parallel GEMM shared by the float tensor ops
// (tensor/ops.cpp) and the double GP linear algebra (linalg/matrix.cpp).
//
// Layout: all operands are dense row-major with explicit leading dimensions.
//
// Two paths share the blocked/tiled outer structure:
//   float  — the register-tile microkernel lives in the runtime-dispatched
//            SIMD layer (src/simd/kernels.hpp, gemm_f32).  The tier is
//            picked per process (BAYESFT_SIMD=scalar|avx2|avx512|neon|
//            native); explicit-intrinsic tiles are 8x32 floats in 16 zmm
//            on AVX-512, 6x16 in 12 ymm on AVX2, 6x8 on NEON, and a 4x2
//            std::fma tile on the scalar reference tier.  gemm_f32 also
//            takes an `accumulate` flag: false overwrites C in the first
//            k-panel, so callers producing a fresh output skip the
//            pre-zero pass entirely.
//   double — the portable gemm_block template below; the compiler unrolls
//            the fixed-bound kGemmMr x kGemmNr accumulator tile.
//
// Both stream k-panels of depth kGemmKc through the accumulators and write
// C back once per panel — O(k / kGemmKc) C traffic instead of the O(k) of
// a naive saxpy formulation.
//
// Determinism: for every element C[i][j] the k-summation order is fixed
// (ascending within a panel, panels ascending) and, on the float path,
// every product-add is exactly one fma on every tier — so results are
// bit-identical for any thread count, any split, and any dispatch tier
// (tile geometry never affects the per-element operation sequence).

#include <algorithm>
#include <cstddef>
#include <type_traits>

#include "simd/kernels.hpp"
#include "utils/parallel.hpp"

namespace bayesft::detail {

#if defined(__AVX512F__)
inline constexpr std::size_t kGemmMr = 8;
template <typename T>
inline constexpr std::size_t kGemmNr = 128 / sizeof(T);
#elif defined(__AVX2__)
inline constexpr std::size_t kGemmMr = 6;
template <typename T>
inline constexpr std::size_t kGemmNr = 64 / sizeof(T);
#else
inline constexpr std::size_t kGemmMr = 4;
template <typename T>
inline constexpr std::size_t kGemmNr = 64 / sizeof(T);
#endif

inline constexpr std::size_t kGemmKc = 256;  ///< k-panel depth

/// C[0:m, 0:n] += A[0:m, 0:k] @ B[0:k, 0:n], single-threaded.
template <typename T>
void gemm_block(const T* a, std::size_t lda, const T* b, std::size_t ldb,
                T* c, std::size_t ldc, std::size_t m, std::size_t k,
                std::size_t n) {
    constexpr std::size_t kMr = kGemmMr;
    constexpr std::size_t kNr = kGemmNr<T>;
    for (std::size_t k0 = 0; k0 < k; k0 += kGemmKc) {
        const std::size_t k1 = std::min(k, k0 + kGemmKc);
        std::size_t i = 0;
        for (; i + kMr <= m; i += kMr) {
            std::size_t j = 0;
            for (; j + kNr <= n; j += kNr) {
                // Full kMr x kNr register tile.
                T acc[kMr][kNr];
                for (std::size_t r = 0; r < kMr; ++r) {
                    for (std::size_t t = 0; t < kNr; ++t) {
                        acc[r][t] = c[(i + r) * ldc + j + t];
                    }
                }
                for (std::size_t kk = k0; kk < k1; ++kk) {
                    const T* brow = b + kk * ldb + j;
                    for (std::size_t r = 0; r < kMr; ++r) {
                        const T av = a[(i + r) * lda + kk];
                        for (std::size_t t = 0; t < kNr; ++t) {
                            acc[r][t] += av * brow[t];
                        }
                    }
                }
                for (std::size_t r = 0; r < kMr; ++r) {
                    for (std::size_t t = 0; t < kNr; ++t) {
                        c[(i + r) * ldc + j + t] = acc[r][t];
                    }
                }
            }
            if (j < n) {
                // Column remainder (< kNr wide), same k-summation order.
                const std::size_t w = n - j;
                T acc[kMr][kNr];
                for (std::size_t r = 0; r < kMr; ++r) {
                    for (std::size_t t = 0; t < w; ++t) {
                        acc[r][t] = c[(i + r) * ldc + j + t];
                    }
                }
                for (std::size_t kk = k0; kk < k1; ++kk) {
                    const T* brow = b + kk * ldb + j;
                    for (std::size_t r = 0; r < kMr; ++r) {
                        const T av = a[(i + r) * lda + kk];
                        for (std::size_t t = 0; t < w; ++t) {
                            acc[r][t] += av * brow[t];
                        }
                    }
                }
                for (std::size_t r = 0; r < kMr; ++r) {
                    for (std::size_t t = 0; t < w; ++t) {
                        c[(i + r) * ldc + j + t] = acc[r][t];
                    }
                }
            }
        }
        for (; i < m; ++i) {
            // Row remainder (< kMr tall): one register row at a time.
            const T* arow = a + i * lda;
            T* crow = c + i * ldc;
            std::size_t j = 0;
            for (; j + kNr <= n; j += kNr) {
                T acc[kNr];
                for (std::size_t t = 0; t < kNr; ++t) acc[t] = crow[j + t];
                for (std::size_t kk = k0; kk < k1; ++kk) {
                    const T av = arow[kk];
                    const T* brow = b + kk * ldb + j;
                    for (std::size_t t = 0; t < kNr; ++t) {
                        acc[t] += av * brow[t];
                    }
                }
                for (std::size_t t = 0; t < kNr; ++t) crow[j + t] = acc[t];
            }
            if (j < n) {
                const std::size_t w = n - j;
                T acc[kNr] = {};
                for (std::size_t t = 0; t < w; ++t) acc[t] = crow[j + t];
                for (std::size_t kk = k0; kk < k1; ++kk) {
                    const T av = arow[kk];
                    const T* brow = b + kk * ldb + j;
                    for (std::size_t t = 0; t < w; ++t) acc[t] += av * brow[t];
                }
                for (std::size_t t = 0; t < w; ++t) crow[j + t] = acc[t];
            }
        }
    }
}

/// Rounds `value` up to a multiple of `unit` (unit > 0).
inline std::size_t round_up(std::size_t value, std::size_t unit) {
    return ((value + unit - 1) / unit) * unit;
}

/// Float driver over the SIMD-dispatched microkernel: C (+)= A @ B using
/// the global thread pool.  `accumulate` false overwrites C (including
/// zero-filling it when k == 0).  Splits are pure row/column partitions of
/// C, so the per-element arithmetic — and therefore the result bits — are
/// independent of the thread count.
inline void gemm_parallel_f32(const float* a, std::size_t lda, const float* b,
                              std::size_t ldb, float* c, std::size_t ldc,
                              std::size_t m, std::size_t k, std::size_t n,
                              bool accumulate) {
    if (m == 0 || n == 0) return;
    const auto& kt = simd::kernels();
    const std::size_t threads = parallel_thread_count();
    // Below ~64^3 fused multiply-adds the dispatch overhead dominates.
    if (threads == 1 || m * n * k < (std::size_t{1} << 18)) {
        kt.gemm_f32(a, lda, b, ldb, c, ldc, m, k, n, accumulate);
        return;
    }
    if (m >= n) {
        const std::size_t grain = round_up(
            std::max<std::size_t>(kGemmMr, m / (threads * 4)), kGemmMr);
        parallel_for(0, m, grain, [&](std::size_t lo, std::size_t hi) {
            kt.gemm_f32(a + lo * lda, lda, b, ldb, c + lo * ldc, ldc,
                        hi - lo, k, n, accumulate);
        });
    } else {
        constexpr std::size_t kNr = kGemmNr<float>;
        const std::size_t grain =
            round_up(std::max<std::size_t>(kNr, n / (threads * 4)), kNr);
        parallel_for(0, n, grain, [&](std::size_t lo, std::size_t hi) {
            kt.gemm_f32(a, lda, b + lo, ldb, c + lo, ldc, m, k, hi - lo,
                        accumulate);
        });
    }
}

/// C[0:m, 0:n] += A[0:m, 0:k] @ B[0:k, 0:n] using the global thread pool.
/// Splits C into row panels (or column panels when the matrix is wide and
/// short, as in the batched-conv GEMM) on tile-aligned boundaries.  The
/// float instantiation routes to the SIMD-dispatched microkernel.
template <typename T>
void gemm_parallel(const T* a, std::size_t lda, const T* b, std::size_t ldb,
                   T* c, std::size_t ldc, std::size_t m, std::size_t k,
                   std::size_t n) {
    if constexpr (std::is_same_v<T, float>) {
        gemm_parallel_f32(a, lda, b, ldb, c, ldc, m, k, n, true);
        return;
    } else {
        if (m == 0 || n == 0 || k == 0) return;
        const std::size_t threads = parallel_thread_count();
        // Below ~64^3 fused multiply-adds the dispatch overhead dominates.
        if (threads == 1 || m * n * k < (std::size_t{1} << 18)) {
            gemm_block(a, lda, b, ldb, c, ldc, m, k, n);
            return;
        }
        if (m >= n) {
            const std::size_t grain = round_up(
                std::max<std::size_t>(kGemmMr, m / (threads * 4)), kGemmMr);
            parallel_for(0, m, grain, [&](std::size_t lo, std::size_t hi) {
                gemm_block(a + lo * lda, lda, b, ldb, c + lo * ldc, ldc,
                           hi - lo, k, n);
            });
        } else {
            constexpr std::size_t kNr = kGemmNr<T>;
            const std::size_t grain =
                round_up(std::max<std::size_t>(kNr, n / (threads * 4)), kNr);
            parallel_for(0, n, grain, [&](std::size_t lo, std::size_t hi) {
                gemm_block(a, lda, b + lo, ldb, c + lo, ldc, m, k, hi - lo);
            });
        }
    }
}

}  // namespace bayesft::detail
