#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace bayesft {

std::size_t shape_size(const std::vector<std::size_t>& shape) {
    std::size_t n = 1;
    for (std::size_t extent : shape) n *= extent;
    return n;
}

std::string shape_to_string(const std::vector<std::size_t>& shape) {
    std::ostringstream os;
    os << '[';
    for (std::size_t i = 0; i < shape.size(); ++i) {
        if (i != 0) os << ", ";
        os << shape[i];
    }
    os << ']';
    return os.str();
}

Tensor::Tensor(std::vector<std::size_t> shape, float fill)
    : shape_(std::move(shape)), data_(shape_size(shape_), fill) {}

Tensor::Tensor(std::vector<std::size_t> shape, std::vector<float> values)
    : shape_(std::move(shape)), data_(std::move(values)) {
    if (data_.size() != shape_size(shape_)) {
        throw std::invalid_argument(
            "Tensor: value count " + std::to_string(data_.size()) +
            " does not match shape " + shape_to_string(shape_));
    }
}

Tensor Tensor::zeros(std::vector<std::size_t> shape) {
    return Tensor(std::move(shape), 0.0F);
}

Tensor Tensor::ones(std::vector<std::size_t> shape) {
    return Tensor(std::move(shape), 1.0F);
}

Tensor Tensor::full(std::vector<std::size_t> shape, float value) {
    return Tensor(std::move(shape), value);
}

Tensor Tensor::randn(std::vector<std::size_t> shape, Rng& rng, float stddev) {
    Tensor t(std::move(shape));
    for (float& v : t.data_) {
        v = static_cast<float>(rng.normal(0.0, stddev));
    }
    return t;
}

Tensor Tensor::uniform(std::vector<std::size_t> shape, Rng& rng, float lo,
                       float hi) {
    Tensor t(std::move(shape));
    for (float& v : t.data_) {
        v = static_cast<float>(rng.uniform(lo, hi));
    }
    return t;
}

std::size_t Tensor::dim(std::size_t axis) const {
    if (axis >= shape_.size()) {
        throw std::out_of_range("Tensor::dim: axis " + std::to_string(axis) +
                                " out of range for shape " +
                                shape_to_string(shape_));
    }
    return shape_[axis];
}

namespace {

std::vector<std::size_t> resolve_shape(std::vector<std::size_t> new_shape,
                                       std::size_t total) {
    std::size_t known = 1;
    std::size_t infer_axis = new_shape.size();
    for (std::size_t i = 0; i < new_shape.size(); ++i) {
        if (new_shape[i] == 0) {
            if (infer_axis != new_shape.size()) {
                throw std::invalid_argument(
                    "Tensor::reshape: at most one dimension may be inferred");
            }
            infer_axis = i;
        } else {
            known *= new_shape[i];
        }
    }
    if (infer_axis != new_shape.size()) {
        if (known == 0 || total % known != 0) {
            throw std::invalid_argument(
                "Tensor::reshape: cannot infer dimension for " +
                shape_to_string(new_shape));
        }
        new_shape[infer_axis] = total / known;
        known *= new_shape[infer_axis];
    }
    if (known != total) {
        throw std::invalid_argument("Tensor::reshape: element count mismatch " +
                                    shape_to_string(new_shape));
    }
    return new_shape;
}

}  // namespace

Tensor Tensor::reshaped(std::vector<std::size_t> new_shape) const {
    Tensor out = *this;
    out.reshape(std::move(new_shape));
    return out;
}

void Tensor::reshape(std::vector<std::size_t> new_shape) {
    shape_ = resolve_shape(std::move(new_shape), size());
}

float& Tensor::at(std::size_t i) {
    if (i >= data_.size()) throw std::out_of_range("Tensor::at");
    return data_[i];
}

float Tensor::at(std::size_t i) const {
    if (i >= data_.size()) throw std::out_of_range("Tensor::at");
    return data_[i];
}

std::size_t Tensor::flat_index(std::size_t i, std::size_t j) const {
    return i * shape_[1] + j;
}

std::size_t Tensor::flat_index(std::size_t i, std::size_t j,
                               std::size_t k) const {
    return (i * shape_[1] + j) * shape_[2] + k;
}

std::size_t Tensor::flat_index(std::size_t i, std::size_t j, std::size_t k,
                               std::size_t l) const {
    return ((i * shape_[1] + j) * shape_[2] + k) * shape_[3] + l;
}

float& Tensor::operator()(std::size_t i, std::size_t j) {
    return data_[flat_index(i, j)];
}
float Tensor::operator()(std::size_t i, std::size_t j) const {
    return data_[flat_index(i, j)];
}
float& Tensor::operator()(std::size_t i, std::size_t j, std::size_t k) {
    return data_[flat_index(i, j, k)];
}
float Tensor::operator()(std::size_t i, std::size_t j, std::size_t k) const {
    return data_[flat_index(i, j, k)];
}
float& Tensor::operator()(std::size_t i, std::size_t j, std::size_t k,
                          std::size_t l) {
    return data_[flat_index(i, j, k, l)];
}
float Tensor::operator()(std::size_t i, std::size_t j, std::size_t k,
                         std::size_t l) const {
    return data_[flat_index(i, j, k, l)];
}

void Tensor::check_same_shape(const Tensor& other, const char* op) const {
    if (shape_ != other.shape_) {
        throw std::invalid_argument(std::string("Tensor::") + op +
                                    ": shape mismatch " +
                                    shape_to_string(shape_) + " vs " +
                                    shape_to_string(other.shape_));
    }
}

Tensor& Tensor::fill(float value) {
    std::fill(data_.begin(), data_.end(), value);
    return *this;
}

Tensor& Tensor::add_(const Tensor& other) {
    check_same_shape(other, "add_");
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
    return *this;
}

Tensor& Tensor::sub_(const Tensor& other) {
    check_same_shape(other, "sub_");
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
    return *this;
}

Tensor& Tensor::mul_(const Tensor& other) {
    check_same_shape(other, "mul_");
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
    return *this;
}

Tensor& Tensor::div_(const Tensor& other) {
    check_same_shape(other, "div_");
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] /= other.data_[i];
    return *this;
}

Tensor& Tensor::add_scalar_(float value) {
    for (float& v : data_) v += value;
    return *this;
}

Tensor& Tensor::mul_scalar_(float value) {
    for (float& v : data_) v *= value;
    return *this;
}

Tensor& Tensor::axpy_(float scale, const Tensor& other) {
    check_same_shape(other, "axpy_");
    for (std::size_t i = 0; i < data_.size(); ++i) {
        data_[i] += scale * other.data_[i];
    }
    return *this;
}

Tensor& Tensor::clamp_(float lo, float hi) {
    for (float& v : data_) v = std::clamp(v, lo, hi);
    return *this;
}

Tensor operator+(Tensor lhs, const Tensor& rhs) { return std::move(lhs.add_(rhs)); }
Tensor operator-(Tensor lhs, const Tensor& rhs) { return std::move(lhs.sub_(rhs)); }
Tensor operator*(Tensor lhs, const Tensor& rhs) { return std::move(lhs.mul_(rhs)); }
Tensor operator*(Tensor lhs, float rhs) { return std::move(lhs.mul_scalar_(rhs)); }
Tensor operator*(float lhs, Tensor rhs) { return std::move(rhs.mul_scalar_(lhs)); }

float Tensor::sum() const {
    double acc = 0.0;
    for (float v : data_) acc += v;
    return static_cast<float>(acc);
}

float Tensor::mean() const {
    if (data_.empty()) throw std::domain_error("Tensor::mean: empty tensor");
    return sum() / static_cast<float>(data_.size());
}

float Tensor::min() const {
    if (data_.empty()) throw std::domain_error("Tensor::min: empty tensor");
    return *std::min_element(data_.begin(), data_.end());
}

float Tensor::max() const {
    if (data_.empty()) throw std::domain_error("Tensor::max: empty tensor");
    return *std::max_element(data_.begin(), data_.end());
}

float Tensor::squared_norm() const {
    double acc = 0.0;
    for (float v : data_) acc += static_cast<double>(v) * v;
    return static_cast<float>(acc);
}

bool Tensor::equals(const Tensor& other) const {
    return shape_ == other.shape_ && data_ == other.data_;
}

bool Tensor::allclose(const Tensor& other, float tol) const {
    if (shape_ != other.shape_) return false;
    for (std::size_t i = 0; i < data_.size(); ++i) {
        if (std::abs(data_[i] - other.data_[i]) > tol) return false;
    }
    return true;
}

std::string Tensor::to_string() const {
    std::ostringstream os;
    os << "Tensor" << shape_to_string(shape_) << " {";
    const std::size_t show = std::min<std::size_t>(data_.size(), 8);
    for (std::size_t i = 0; i < show; ++i) {
        if (i != 0) os << ", ";
        os << data_[i];
    }
    if (data_.size() > show) os << ", ...";
    os << '}';
    return os.str();
}

}  // namespace bayesft
