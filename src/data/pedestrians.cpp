#include "data/pedestrians.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace bayesft::data {

namespace {

/// Samples the placement box of a pedestrian without drawing it, so overlap
/// rejection can happen before any pixels change.
detect::Box sample_placement(std::size_t s, Rng& rng) {
    const double height = rng.uniform(0.35, 0.55) * static_cast<double>(s);
    const double width = height * rng.uniform(0.30, 0.42);
    const double x = rng.uniform(1.0, static_cast<double>(s) - width - 1.0);
    const double y = rng.uniform(1.0, static_cast<double>(s) - height - 1.0);
    return detect::Box{x, y, x + width, y + height};
}

/// Draws one pedestrian (head ellipse + body rectangle) into `box`.
void draw_pedestrian(Tensor& img, std::size_t s, const detect::Box& box,
                     Rng& rng) {
    const double x = box.x1, y = box.y1;
    const double width = box.width(), height = box.height();

    // Pedestrians are darker than the background, with slight color cast.
    const float shade = static_cast<float>(rng.uniform(0.05, 0.25));
    const float cast_r = shade + static_cast<float>(rng.uniform(0.0, 0.1));
    const float cast_g = shade;
    const float cast_b = shade + static_cast<float>(rng.uniform(0.0, 0.1));

    const double head_radius = width * 0.45;
    const double head_cx = x + width / 2.0;
    const double head_cy = y + head_radius;
    const double body_top = y + 2.0 * head_radius;

    for (std::size_t py = 0; py < s; ++py) {
        for (std::size_t px = 0; px < s; ++px) {
            const double fx = static_cast<double>(px) + 0.5;
            const double fy = static_cast<double>(py) + 0.5;
            const double hdx = fx - head_cx;
            const double hdy = fy - head_cy;
            const bool in_head =
                (hdx * hdx + hdy * hdy) <= head_radius * head_radius;
            const bool in_body = fx >= x + width * 0.15 &&
                                 fx <= x + width * 0.85 && fy >= body_top &&
                                 fy <= y + height;
            if (in_head || in_body) {
                img(0, py, px) = cast_r;
                img(1, py, px) = cast_g;
                img(2, py, px) = cast_b;
            }
        }
    }
}

}  // namespace

DetectionDataset synthetic_pedestrians(const PedestrianConfig& config,
                                       Rng& rng) {
    if (config.samples == 0) {
        throw std::invalid_argument("synthetic_pedestrians: zero samples");
    }
    if (config.min_pedestrians == 0 ||
        config.min_pedestrians > config.max_pedestrians) {
        throw std::invalid_argument(
            "synthetic_pedestrians: bad pedestrian count range");
    }
    if (config.image_size < 16) {
        throw std::invalid_argument("synthetic_pedestrians: image too small");
    }
    const std::size_t s = config.image_size;
    DetectionDataset d;
    d.images = Tensor({config.samples, 3, s, s});
    d.boxes.resize(config.samples);
    const std::size_t image_scalars = 3 * s * s;
    for (std::size_t i = 0; i < config.samples; ++i) {
        Tensor img({3, s, s});
        // Textured bright background: vertical gradient + noise.
        const float base = static_cast<float>(rng.uniform(0.55, 0.8));
        for (std::size_t py = 0; py < s; ++py) {
            const float row_shade =
                base + 0.15F * static_cast<float>(py) /
                           static_cast<float>(s);
            for (std::size_t px = 0; px < s; ++px) {
                for (std::size_t ch = 0; ch < 3; ++ch) {
                    img(ch, py, px) =
                        row_shade +
                        static_cast<float>(rng.normal(0.0, 0.03));
                }
            }
        }
        const std::size_t count =
            config.min_pedestrians +
            rng.uniform_int(config.max_pedestrians - config.min_pedestrians +
                            1);
        for (std::size_t p = 0; p < count; ++p) {
            const detect::Box box = sample_placement(s, rng);
            // Reject heavy overlap with already-placed pedestrians so boxes
            // stay unambiguous ground truth (the figure is only drawn if
            // its box is accepted).
            bool overlapping = false;
            for (const detect::Box& other : d.boxes[i]) {
                if (detect::iou(box, other) > 0.3) {
                    overlapping = true;
                    break;
                }
            }
            if (overlapping) continue;
            draw_pedestrian(img, s, box, rng);
            d.boxes[i].push_back(box);
        }
        for (float& v : img.values()) {
            v = std::clamp(
                v + static_cast<float>(rng.normal(0.0, config.noise)), 0.0F,
                1.0F);
        }
        std::copy_n(img.data(), image_scalars,
                    d.images.data() + i * image_scalars);
    }
    return d;
}

}  // namespace bayesft::data
