#include "data/dataset.hpp"

#include <algorithm>
#include <stdexcept>

namespace bayesft::data {

Dataset take_rows(const Dataset& full, const std::vector<std::size_t>& rows) {
    if (full.size() == 0) {
        throw std::invalid_argument("take_rows: empty dataset");
    }
    const std::size_t row_size = full.images.size() / full.images.dim(0);
    std::vector<std::size_t> shape = full.images.shape();
    shape[0] = rows.size();
    Dataset out;
    out.images = Tensor(shape);
    out.labels.reserve(rows.size());
    out.num_classes = full.num_classes;
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const std::size_t src = rows[i];
        if (src >= full.size()) {
            throw std::out_of_range("take_rows: row index out of range");
        }
        std::copy_n(full.images.data() + src * row_size, row_size,
                    out.images.data() + i * row_size);
        out.labels.push_back(full.labels[src]);
    }
    return out;
}

TrainTestSplit split(const Dataset& full, double test_fraction, Rng& rng) {
    if (!(test_fraction > 0.0) || !(test_fraction < 1.0)) {
        throw std::invalid_argument("split: test_fraction must be in (0, 1)");
    }
    const std::size_t n = full.size();
    if (n < 2) throw std::invalid_argument("split: need at least 2 samples");
    const auto perm = rng.permutation(n);
    std::size_t test_count =
        static_cast<std::size_t>(test_fraction * static_cast<double>(n));
    test_count = std::clamp<std::size_t>(test_count, 1, n - 1);

    std::vector<std::size_t> test_rows(perm.begin(),
                                       perm.begin() + test_count);
    std::vector<std::size_t> train_rows(perm.begin() + test_count,
                                        perm.end());
    TrainTestSplit result;
    result.train = take_rows(full, train_rows);
    result.test = take_rows(full, test_rows);
    return result;
}

std::vector<std::size_t> class_histogram(const Dataset& dataset) {
    std::vector<std::size_t> counts(dataset.num_classes, 0);
    for (int label : dataset.labels) {
        if (label < 0 ||
            static_cast<std::size_t>(label) >= dataset.num_classes) {
            throw std::out_of_range("class_histogram: label out of range");
        }
        ++counts[static_cast<std::size_t>(label)];
    }
    return counts;
}

}  // namespace bayesft::data
