#pragma once
// Low-dimensional toy datasets (paper Fig. 1 uses a scikit-learn-style
// binary classification problem to visualize decision-boundary shift).

#include "data/dataset.hpp"

namespace bayesft::data {

/// Two interleaving half-moons (binary), features [N, 2] with i.i.d.
/// Gaussian `noise` added to both coordinates.
Dataset make_moons(std::size_t samples, double noise, Rng& rng);

/// Isotropic Gaussian blobs, one per class, centers on a circle of radius
/// `spread`, per-class stddev `stddev`.
Dataset make_blobs(std::size_t samples, std::size_t classes, double spread,
                   double stddev, Rng& rng);

/// Concentric circles (binary): inner radius 0.5, outer radius 1, plus noise.
Dataset make_circles(std::size_t samples, double noise, Rng& rng);

}  // namespace bayesft::data
