#pragma once
// Synthetic handwritten-digit substitute for MNIST (offline environment —
// see DESIGN.md section 2).  Digits are rendered from a 5x7 glyph font
// through a random affine transform (shift / scale / rotation / shear),
// with stroke-intensity jitter and additive pixel noise, giving a 10-class
// problem with MNIST-like difficulty ordering for small models.

#include "data/dataset.hpp"

namespace bayesft::data {

/// Generation knobs for the digit renderer.
struct DigitConfig {
    std::size_t samples = 2000;
    std::size_t image_size = 16;  ///< square side; MNIST uses 28
    /// Translation as a fraction of image size.  MNIST digits are centered,
    /// so the default jitter is small; large shifts make the task MLP-hard.
    double max_shift = 0.06;
    double max_rotation = 0.2;  ///< radians
    double min_scale = 0.8;
    double max_scale = 1.1;
    double noise = 0.08;          ///< additive Gaussian pixel noise stddev
};

/// Renders a balanced 10-class digit dataset, images [N, 1, S, S] in [0, 1].
Dataset synthetic_digits(const DigitConfig& config, Rng& rng);

/// Renders a single digit glyph (exposed for tests/visualization):
/// an [S, S] tensor for `digit` in 0..9 with the given transform.
Tensor render_digit(int digit, std::size_t image_size, double shift_x,
                    double shift_y, double rotation, double scale);

}  // namespace bayesft::data
