#pragma once
// Synthetic 43-class traffic-sign dataset substituting for GTSRB
// (see DESIGN.md section 2).  Each class is a unique combination of plate
// shape, border color and inner glyph; images get random affine jitter so
// the spatial-transformer front-end of the classifier has real work to do
// (paper Fig. 3(i)).

#include "data/dataset.hpp"

namespace bayesft::data {

/// Generation knobs for the traffic-sign renderer.
struct TrafficSignConfig {
    std::size_t samples = 4300;
    std::size_t image_size = 16;
    std::size_t num_classes = 43;  ///< GTSRB has 43
    double max_shift = 0.12;       ///< fraction of image size
    double max_rotation = 0.3;     ///< radians
    double min_scale = 0.75;
    double max_scale = 1.15;
    double noise = 0.05;
};

/// Renders a balanced dataset, images [N, 3, S, S] in [0, 1].
Dataset synthetic_traffic_signs(const TrafficSignConfig& config, Rng& rng);

/// Renders one canonical (un-jittered) sign [3, S, S] for a class id
/// (exposed for tests).
Tensor render_traffic_sign(int class_id, std::size_t image_size,
                           double shift_x, double shift_y, double rotation,
                           double scale);

}  // namespace bayesft::data
