#pragma once
// Synthetic 10-class RGB object dataset substituting for CIFAR-10
// (see DESIGN.md section 2).  Classes are procedurally generated shapes and
// textures with randomized color, position and noise, producing a task hard
// enough that small convnets sit in CIFAR-like accuracy regimes.

#include "data/dataset.hpp"

namespace bayesft::data {

/// Generation knobs for the object renderer.
struct ObjectConfig {
    std::size_t samples = 2000;
    std::size_t image_size = 16;  ///< square side; CIFAR uses 32
    double noise = 0.06;          ///< additive Gaussian pixel noise stddev
};

/// The ten procedural classes, in label order.
enum class ObjectClass : int {
    kCircle = 0,
    kSquare,
    kTriangle,
    kRing,
    kCross,
    kHorizontalStripes,
    kVerticalStripes,
    kCheckerboard,
    kDiagonalGradient,
    kDotGrid,
};

/// Renders a balanced dataset, images [N, 3, S, S] in [0, 1], 10 classes.
Dataset synthetic_objects(const ObjectConfig& config, Rng& rng);

/// Renders a single object image [3, S, S] (exposed for tests).
Tensor render_object(ObjectClass object_class, std::size_t image_size,
                     Rng& rng, double noise);

}  // namespace bayesft::data
