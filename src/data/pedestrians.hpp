#pragma once
// Synthetic pedestrian-detection scenes substituting for PennFudanPed
// (see DESIGN.md section 2).  Each scene contains 1-3 pedestrian-like
// figures (elliptical head + rectangular body) over a textured background,
// with ground-truth boxes for mAP evaluation.

#include <vector>

#include "data/dataset.hpp"
#include "detect/box.hpp"

namespace bayesft::data {

/// A detection dataset: scenes plus per-scene ground-truth boxes.
struct DetectionDataset {
    Tensor images;                               // [N, 3, S, S]
    std::vector<std::vector<detect::Box>> boxes;  // per image

    std::size_t size() const { return boxes.size(); }
};

/// Generation knobs for the pedestrian scene renderer.
struct PedestrianConfig {
    std::size_t samples = 400;
    std::size_t image_size = 32;
    std::size_t min_pedestrians = 1;
    std::size_t max_pedestrians = 3;
    double noise = 0.04;
};

/// Renders scenes with ground truth.
DetectionDataset synthetic_pedestrians(const PedestrianConfig& config,
                                       Rng& rng);

}  // namespace bayesft::data
