#include "data/digits.hpp"

#include <array>
#include <cmath>
#include <stdexcept>
#include <string_view>

namespace bayesft::data {

namespace {

// 5x7 digit font; '#' marks ink.
constexpr std::array<std::array<std::string_view, 7>, 10> kGlyphs{{
    {" ### ", "#   #", "#  ##", "# # #", "##  #", "#   #", " ### "},  // 0
    {"  #  ", " ##  ", "  #  ", "  #  ", "  #  ", "  #  ", " ### "},  // 1
    {" ### ", "#   #", "    #", "   # ", "  #  ", " #   ", "#####"},  // 2
    {" ### ", "#   #", "    #", "  ## ", "    #", "#   #", " ### "},  // 3
    {"   # ", "  ## ", " # # ", "#  # ", "#####", "   # ", "   # "},  // 4
    {"#####", "#    ", "#### ", "    #", "    #", "#   #", " ### "},  // 5
    {" ### ", "#    ", "#    ", "#### ", "#   #", "#   #", " ### "},  // 6
    {"#####", "    #", "   # ", "  #  ", "  #  ", "  #  ", "  #  "},  // 7
    {" ### ", "#   #", "#   #", " ### ", "#   #", "#   #", " ### "},  // 8
    {" ### ", "#   #", "#   #", " ####", "    #", "    #", " ### "},  // 9
}};

constexpr std::size_t kGlyphW = 5;
constexpr std::size_t kGlyphH = 7;

/// Continuous glyph lookup with bilinear interpolation; coordinates in
/// glyph units, out-of-bounds reads as background (0).
float glyph_sample(int digit, double gy, double gx) {
    auto ink = [&](std::ptrdiff_t r, std::ptrdiff_t c) -> float {
        if (r < 0 || c < 0 || r >= static_cast<std::ptrdiff_t>(kGlyphH) ||
            c >= static_cast<std::ptrdiff_t>(kGlyphW)) {
            return 0.0F;
        }
        return kGlyphs[static_cast<std::size_t>(digit)]
                      [static_cast<std::size_t>(r)]
                      [static_cast<std::size_t>(c)] == '#'
                   ? 1.0F
                   : 0.0F;
    };
    const auto r0 = static_cast<std::ptrdiff_t>(std::floor(gy));
    const auto c0 = static_cast<std::ptrdiff_t>(std::floor(gx));
    const float wy = static_cast<float>(gy - static_cast<double>(r0));
    const float wx = static_cast<float>(gx - static_cast<double>(c0));
    return (1.0F - wy) * ((1.0F - wx) * ink(r0, c0) + wx * ink(r0, c0 + 1)) +
           wy * ((1.0F - wx) * ink(r0 + 1, c0) + wx * ink(r0 + 1, c0 + 1));
}

}  // namespace

Tensor render_digit(int digit, std::size_t image_size, double shift_x,
                    double shift_y, double rotation, double scale) {
    if (digit < 0 || digit > 9) {
        throw std::invalid_argument("render_digit: digit must be 0..9");
    }
    if (image_size < 8) {
        throw std::invalid_argument("render_digit: image_size too small");
    }
    Tensor img({image_size, image_size});
    const double cx = static_cast<double>(image_size) / 2.0;
    const double cy = static_cast<double>(image_size) / 2.0;
    const double cos_r = std::cos(rotation);
    const double sin_r = std::sin(rotation);
    // Pixels per glyph cell: the glyph occupies ~70% of the image at scale 1.
    const double cell =
        0.7 * static_cast<double>(image_size) / static_cast<double>(kGlyphH) *
        scale;
    for (std::size_t y = 0; y < image_size; ++y) {
        for (std::size_t x = 0; x < image_size; ++x) {
            // Inverse map: image pixel -> centered -> unrotate -> glyph grid.
            const double px =
                static_cast<double>(x) - cx - shift_x * image_size;
            const double py =
                static_cast<double>(y) - cy - shift_y * image_size;
            const double ux = cos_r * px + sin_r * py;
            const double uy = -sin_r * px + cos_r * py;
            const double gx = ux / cell + static_cast<double>(kGlyphW) / 2.0;
            const double gy = uy / cell + static_cast<double>(kGlyphH) / 2.0;
            img(y, x) = glyph_sample(digit, gy - 0.5, gx - 0.5);
        }
    }
    return img;
}

Dataset synthetic_digits(const DigitConfig& config, Rng& rng) {
    if (config.samples < 10) {
        throw std::invalid_argument("synthetic_digits: need >= 10 samples");
    }
    const std::size_t s = config.image_size;
    Dataset d;
    d.images = Tensor({config.samples, 1, s, s});
    d.labels.resize(config.samples);
    d.num_classes = 10;
    for (std::size_t i = 0; i < config.samples; ++i) {
        const int digit = static_cast<int>(i % 10);
        const Tensor glyph = render_digit(
            digit, s, rng.uniform(-config.max_shift, config.max_shift),
            rng.uniform(-config.max_shift, config.max_shift),
            rng.uniform(-config.max_rotation, config.max_rotation),
            rng.uniform(config.min_scale, config.max_scale));
        const auto intensity = static_cast<float>(rng.uniform(0.7, 1.0));
        float* dst = d.images.data() + i * s * s;
        for (std::size_t p = 0; p < s * s; ++p) {
            const float noisy =
                glyph[p] * intensity +
                static_cast<float>(rng.normal(0.0, config.noise));
            dst[p] = std::min(1.0F, std::max(0.0F, noisy));
        }
        d.labels[i] = digit;
    }
    return d;
}

}  // namespace bayesft::data
