#include "data/objects.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace bayesft::data {

namespace {

struct Rgb {
    float r = 0.0F;
    float g = 0.0F;
    float b = 0.0F;
};

Rgb random_color(Rng& rng, double min_brightness) {
    Rgb c;
    c.r = static_cast<float>(rng.uniform(min_brightness, 1.0));
    c.g = static_cast<float>(rng.uniform(min_brightness, 1.0));
    c.b = static_cast<float>(rng.uniform(min_brightness, 1.0));
    return c;
}

/// Foreground coverage in [0,1] for a pixel, per class geometry.
float coverage(ObjectClass cls, double y, double x, double cx, double cy,
               double radius, int phase) {
    const double dx = x - cx;
    const double dy = y - cy;
    const double dist = std::sqrt(dx * dx + dy * dy);
    switch (cls) {
        case ObjectClass::kCircle:
            return dist <= radius ? 1.0F : 0.0F;
        case ObjectClass::kSquare:
            return (std::abs(dx) <= radius * 0.85 &&
                    std::abs(dy) <= radius * 0.85)
                       ? 1.0F
                       : 0.0F;
        case ObjectClass::kTriangle: {
            // Upward triangle: inside if below the two slanted edges.
            const double h = radius * 1.6;
            const double ty = dy + h / 2.0;
            if (ty < 0.0 || ty > h) return 0.0F;
            const double half_width = radius * (ty / h);
            return std::abs(dx) <= half_width ? 1.0F : 0.0F;
        }
        case ObjectClass::kRing:
            return (dist <= radius && dist >= radius * 0.55) ? 1.0F : 0.0F;
        case ObjectClass::kCross:
            return (std::abs(dx) <= radius * 0.3 ||
                    std::abs(dy) <= radius * 0.3) &&
                           dist <= radius * 1.3
                       ? 1.0F
                       : 0.0F;
        case ObjectClass::kHorizontalStripes:
            return (static_cast<int>(y / 2.0) + phase) % 2 == 0 ? 1.0F : 0.0F;
        case ObjectClass::kVerticalStripes:
            return (static_cast<int>(x / 2.0) + phase) % 2 == 0 ? 1.0F : 0.0F;
        case ObjectClass::kCheckerboard:
            return ((static_cast<int>(y / 2.0) + static_cast<int>(x / 2.0) +
                     phase) %
                    2) == 0
                       ? 1.0F
                       : 0.0F;
        case ObjectClass::kDiagonalGradient:
            return static_cast<float>((x + y) /
                                      (2.0 * (cx + cy)));  // smooth ramp
        case ObjectClass::kDotGrid: {
            const double gx = std::fmod(x + phase, 4.0) - 2.0;
            const double gy = std::fmod(y + phase, 4.0) - 2.0;
            return (gx * gx + gy * gy) <= 1.2 ? 1.0F : 0.0F;
        }
    }
    return 0.0F;
}

}  // namespace

Tensor render_object(ObjectClass cls, std::size_t image_size, Rng& rng,
                     double noise) {
    if (image_size < 8) {
        throw std::invalid_argument("render_object: image_size too small");
    }
    const std::size_t s = image_size;
    Tensor img({3, s, s});
    const Rgb fg = random_color(rng, 0.55);
    const Rgb bg = random_color(rng, 0.0);
    const double cx =
        static_cast<double>(s) / 2.0 + rng.uniform(-2.0, 2.0);
    const double cy =
        static_cast<double>(s) / 2.0 + rng.uniform(-2.0, 2.0);
    const double radius = static_cast<double>(s) * rng.uniform(0.25, 0.38);
    const int phase = static_cast<int>(rng.uniform_int(std::uint64_t{4}));
    for (std::size_t y = 0; y < s; ++y) {
        for (std::size_t x = 0; x < s; ++x) {
            const float a =
                coverage(cls, static_cast<double>(y), static_cast<double>(x),
                         cx, cy, radius, phase);
            const float r = a * fg.r + (1.0F - a) * bg.r * 0.4F;
            const float g = a * fg.g + (1.0F - a) * bg.g * 0.4F;
            const float b = a * fg.b + (1.0F - a) * bg.b * 0.4F;
            auto put = [&](std::size_t ch, float v) {
                const float noisy =
                    v + static_cast<float>(rng.normal(0.0, noise));
                img(ch, y, x) = std::min(1.0F, std::max(0.0F, noisy));
            };
            put(0, r);
            put(1, g);
            put(2, b);
        }
    }
    return img;
}

Dataset synthetic_objects(const ObjectConfig& config, Rng& rng) {
    if (config.samples < 10) {
        throw std::invalid_argument("synthetic_objects: need >= 10 samples");
    }
    const std::size_t s = config.image_size;
    Dataset d;
    d.images = Tensor({config.samples, 3, s, s});
    d.labels.resize(config.samples);
    d.num_classes = 10;
    const std::size_t image_scalars = 3 * s * s;
    for (std::size_t i = 0; i < config.samples; ++i) {
        const int label = static_cast<int>(i % 10);
        const Tensor img = render_object(static_cast<ObjectClass>(label), s,
                                         rng, config.noise);
        std::copy_n(img.data(), image_scalars,
                    d.images.data() + i * image_scalars);
        d.labels[i] = label;
    }
    return d;
}

}  // namespace bayesft::data
