#include "data/traffic_signs.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace bayesft::data {

namespace {

// Class id decomposition: 5 plate shapes x 3 border colors x 4 glyphs = 60
// combinations; GTSRB's 43 classes use ids 0..42 of that product space.
constexpr int kShapes = 5;
constexpr int kColors = 3;

struct Rgb {
    float r = 0.0F;
    float g = 0.0F;
    float b = 0.0F;
};

constexpr Rgb kBorderColors[kColors] = {
    {0.85F, 0.10F, 0.10F},  // red
    {0.10F, 0.20F, 0.85F},  // blue
    {0.90F, 0.80F, 0.10F},  // yellow
};

/// Signed "inside-ness" of the plate in canonical coordinates (u, v) in
/// [-1, 1]: returns a value > 0 inside, scaled so ~0.25 from the rim is
/// deep interior.
double plate_inside(int shape, double u, double v) {
    switch (shape) {
        case 0:  // circle
            return 0.9 - std::sqrt(u * u + v * v);
        case 1: {  // triangle (point up)
            const double top = 0.85;
            if (v > top) return top - v;
            const double limit = 0.95 * (v + 0.9) / 1.8;
            return limit - std::abs(u);
        }
        case 2: {  // triangle (point down)
            const double bottom = -0.85;
            if (v < bottom) return v - bottom;
            const double limit = 0.95 * (0.9 - v) / 1.8;
            return limit - std::abs(u);
        }
        case 3:  // diamond
            return 0.9 - (std::abs(u) + std::abs(v));
        case 4:  // octagon-ish rounded square
            return 0.85 - std::max(std::max(std::abs(u), std::abs(v)),
                                   (std::abs(u) + std::abs(v)) / 1.3);
        default:
            throw std::logic_error("plate_inside: bad shape");
    }
}

/// Inner glyph coverage (dark ink on the plate interior).
float glyph_cover(int glyph, double u, double v) {
    switch (glyph) {
        case 0:  // none
            return 0.0F;
        case 1:  // horizontal bar
            return (std::abs(v) < 0.18 && std::abs(u) < 0.5) ? 1.0F : 0.0F;
        case 2:  // central dot
            return (u * u + v * v) < 0.08 ? 1.0F : 0.0F;
        case 3:  // vertical bar
            return (std::abs(u) < 0.18 && std::abs(v) < 0.5) ? 1.0F : 0.0F;
        default:
            throw std::logic_error("glyph_cover: bad glyph");
    }
}

}  // namespace

Tensor render_traffic_sign(int class_id, std::size_t image_size,
                           double shift_x, double shift_y, double rotation,
                           double scale) {
    if (class_id < 0 || class_id >= kShapes * kColors * 4) {
        throw std::invalid_argument("render_traffic_sign: class out of range");
    }
    if (image_size < 8) {
        throw std::invalid_argument("render_traffic_sign: image too small");
    }
    const int shape = class_id % kShapes;
    const int color = (class_id / kShapes) % kColors;
    const int glyph = class_id / (kShapes * kColors);
    const Rgb border = kBorderColors[color];

    const std::size_t s = image_size;
    Tensor img({3, s, s});
    const double half = static_cast<double>(s) / 2.0;
    const double cos_r = std::cos(rotation);
    const double sin_r = std::sin(rotation);
    for (std::size_t y = 0; y < s; ++y) {
        for (std::size_t x = 0; x < s; ++x) {
            // Inverse affine into canonical [-1, 1]^2 coordinates.
            const double px =
                (static_cast<double>(x) - half - shift_x * s) / (half * scale);
            const double py =
                (static_cast<double>(y) - half - shift_y * s) / (half * scale);
            const double u = cos_r * px + sin_r * py;
            const double v = -sin_r * px + cos_r * py;

            const double inside = plate_inside(shape, u, v);
            Rgb pix{0.12F, 0.12F, 0.12F};  // dark background
            if (inside > 0.0) {
                if (inside < 0.22) {
                    pix = border;  // rim
                } else {
                    pix = {0.92F, 0.92F, 0.92F};  // plate interior
                    const float ink = glyph_cover(glyph, u, v);
                    pix.r = pix.r * (1.0F - ink) + 0.05F * ink;
                    pix.g = pix.g * (1.0F - ink) + 0.05F * ink;
                    pix.b = pix.b * (1.0F - ink) + 0.05F * ink;
                }
            }
            img(0, y, x) = pix.r;
            img(1, y, x) = pix.g;
            img(2, y, x) = pix.b;
        }
    }
    return img;
}

Dataset synthetic_traffic_signs(const TrafficSignConfig& config, Rng& rng) {
    if (config.num_classes == 0 ||
        config.num_classes > static_cast<std::size_t>(kShapes * kColors * 4)) {
        throw std::invalid_argument(
            "synthetic_traffic_signs: num_classes out of range");
    }
    if (config.samples < config.num_classes) {
        throw std::invalid_argument(
            "synthetic_traffic_signs: need >= one sample per class");
    }
    const std::size_t s = config.image_size;
    Dataset d;
    d.images = Tensor({config.samples, 3, s, s});
    d.labels.resize(config.samples);
    d.num_classes = config.num_classes;
    const std::size_t image_scalars = 3 * s * s;
    for (std::size_t i = 0; i < config.samples; ++i) {
        const int label = static_cast<int>(i % config.num_classes);
        Tensor img = render_traffic_sign(
            label, s, rng.uniform(-config.max_shift, config.max_shift),
            rng.uniform(-config.max_shift, config.max_shift),
            rng.uniform(-config.max_rotation, config.max_rotation),
            rng.uniform(config.min_scale, config.max_scale));
        // Additive sensor noise, clamped to [0, 1].
        for (float& v : img.values()) {
            v = std::clamp(
                v + static_cast<float>(rng.normal(0.0, config.noise)), 0.0F,
                1.0F);
        }
        std::copy_n(img.data(), image_scalars,
                    d.images.data() + i * image_scalars);
        d.labels[i] = label;
    }
    return d;
}

}  // namespace bayesft::data
