#pragma once
// Dataset containers and generic helpers shared by all synthetic generators.

#include <vector>

#include "tensor/tensor.hpp"
#include "utils/rng.hpp"

namespace bayesft::data {

/// A labeled classification dataset: images [N, ...] + integer labels.
struct Dataset {
    Tensor images;
    std::vector<int> labels;
    std::size_t num_classes = 0;

    std::size_t size() const { return labels.size(); }
};

/// A train/test pair.
struct TrainTestSplit {
    Dataset train;
    Dataset test;
};

/// Randomly splits `full` into train/test with `test_fraction` of rows held
/// out.  Throws std::invalid_argument for degenerate fractions or an empty
/// dataset.
TrainTestSplit split(const Dataset& full, double test_fraction, Rng& rng);

/// Selects the given rows into a new dataset (utility for splits/subsets).
Dataset take_rows(const Dataset& full, const std::vector<std::size_t>& rows);

/// Per-class sample counts (sanity checks / class balance tests).
std::vector<std::size_t> class_histogram(const Dataset& dataset);

}  // namespace bayesft::data
