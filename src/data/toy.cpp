#include "data/toy.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace bayesft::data {

namespace {

void check_samples(std::size_t samples, const char* who) {
    if (samples < 2) {
        throw std::invalid_argument(std::string(who) + ": need >= 2 samples");
    }
}

}  // namespace

Dataset make_moons(std::size_t samples, double noise, Rng& rng) {
    check_samples(samples, "make_moons");
    Dataset d;
    d.images = Tensor({samples, 2});
    d.labels.resize(samples);
    d.num_classes = 2;
    for (std::size_t i = 0; i < samples; ++i) {
        const int label = static_cast<int>(i % 2);
        const double t = rng.uniform(0.0, std::numbers::pi);
        double x;
        double y;
        if (label == 0) {
            x = std::cos(t);
            y = std::sin(t);
        } else {
            x = 1.0 - std::cos(t);
            y = 0.5 - std::sin(t);
        }
        d.images(i, 0) = static_cast<float>(x + rng.normal(0.0, noise));
        d.images(i, 1) = static_cast<float>(y + rng.normal(0.0, noise));
        d.labels[i] = label;
    }
    return d;
}

Dataset make_blobs(std::size_t samples, std::size_t classes, double spread,
                   double stddev, Rng& rng) {
    check_samples(samples, "make_blobs");
    if (classes < 2) throw std::invalid_argument("make_blobs: classes < 2");
    Dataset d;
    d.images = Tensor({samples, 2});
    d.labels.resize(samples);
    d.num_classes = classes;
    for (std::size_t i = 0; i < samples; ++i) {
        const auto label = static_cast<int>(i % classes);
        const double angle = 2.0 * std::numbers::pi *
                             static_cast<double>(label) /
                             static_cast<double>(classes);
        d.images(i, 0) = static_cast<float>(spread * std::cos(angle) +
                                            rng.normal(0.0, stddev));
        d.images(i, 1) = static_cast<float>(spread * std::sin(angle) +
                                            rng.normal(0.0, stddev));
        d.labels[i] = label;
    }
    return d;
}

Dataset make_circles(std::size_t samples, double noise, Rng& rng) {
    check_samples(samples, "make_circles");
    Dataset d;
    d.images = Tensor({samples, 2});
    d.labels.resize(samples);
    d.num_classes = 2;
    for (std::size_t i = 0; i < samples; ++i) {
        const int label = static_cast<int>(i % 2);
        const double radius = label == 0 ? 1.0 : 0.5;
        const double t = rng.uniform(0.0, 2.0 * std::numbers::pi);
        d.images(i, 0) = static_cast<float>(radius * std::cos(t) +
                                            rng.normal(0.0, noise));
        d.images(i, 1) = static_cast<float>(radius * std::sin(t) +
                                            rng.normal(0.0, noise));
        d.labels[i] = label;
    }
    return d;
}

}  // namespace bayesft::data
