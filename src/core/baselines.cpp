#include "core/baselines.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <stdexcept>

#include "fault/injector.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "tensor/ops.hpp"

namespace bayesft::core {

void train_erm(models::ModelHandle& model, const data::Dataset& train_set,
               const nn::TrainConfig& config, Rng& rng) {
    model.set_dropout_rates(
        std::vector<double>(model.dropout_sites.size(), 0.0));
    nn::train_classifier(*model.net, train_set.images, train_set.labels,
                         config, rng);
}

void train_reram_v(models::ModelHandle& model, const data::Dataset& train_set,
                   const ReRamVConfig& config, Rng& rng) {
    train_erm(model, train_set, config.pretrain, rng);
    // Diagnose: the deployed device exhibits one concrete drift pattern.
    const fault::LogNormalDrift device_drift(config.device_sigma);
    fault::inject(*model.net, device_drift, rng);
    // Retrain on the drifted weights to compensate this pattern.
    nn::TrainConfig adapt = config.pretrain;
    adapt.epochs = config.adapt_epochs;
    nn::train_classifier(*model.net, train_set.images, train_set.labels,
                         adapt, rng);
}

void train_awp(models::ModelHandle& model, const data::Dataset& train_set,
               const AwpConfig& config, Rng& rng) {
    if (!(config.gamma >= 0.0)) {
        throw std::invalid_argument("train_awp: gamma must be >= 0");
    }
    model.set_dropout_rates(
        std::vector<double>(model.dropout_sites.size(), 0.0));
    nn::Module& net = *model.net;
    const auto params = net.parameters();
    nn::Sgd opt(params, config.train.learning_rate, config.train.momentum,
                config.train.weight_decay);

    const std::size_t n = train_set.images.dim(0);
    const std::size_t batch = std::min(config.train.batch_size, n);
    net.set_training(true);
    for (std::size_t epoch = 0; epoch < config.train.epochs; ++epoch) {
        const auto order = rng.permutation(n);
        for (std::size_t lo = 0; lo < n; lo += batch) {
            const std::size_t hi = std::min(lo + batch, n);
            const nn::Batch b = nn::gather_batch(
                train_set.images, train_set.labels, order, lo, hi);

            // Inner maximization: one layer-normalized ascent step.
            opt.zero_grad();
            const Tensor logits = net.forward(b.images);
            const nn::LossResult loss = nn::cross_entropy(logits, b.labels);
            net.backward(loss.grad);

            std::vector<Tensor> deltas;
            deltas.reserve(params.size());
            for (nn::Parameter* p : params) {
                Tensor delta = Tensor::zeros(p->value.shape());
                const double grad_norm =
                    std::sqrt(static_cast<double>(p->grad.squared_norm()));
                if (grad_norm > 1e-12) {
                    const double weight_norm = std::sqrt(
                        static_cast<double>(p->value.squared_norm()));
                    const float scale = static_cast<float>(
                        config.gamma * weight_norm / grad_norm);
                    delta = p->grad;
                    delta.mul_scalar_(scale);
                    p->value.add_(delta);
                }
                deltas.push_back(std::move(delta));
            }

            // Outer minimization: gradient at the perturbed point.
            opt.zero_grad();
            const Tensor adv_logits = net.forward(b.images);
            const nn::LossResult adv_loss =
                nn::cross_entropy(adv_logits, b.labels);
            net.backward(adv_loss.grad);

            // Restore the clean weights, then step with adversarial grads.
            for (std::size_t i = 0; i < params.size(); ++i) {
                params[i]->value.sub_(deltas[i]);
            }
            opt.step();
        }
    }
}

FtnaClassifier::FtnaClassifier(models::ModelHandle model,
                               std::size_t num_classes, std::size_t code_bits,
                               Rng& rng)
    : model_(std::move(model)),
      num_classes_(num_classes),
      code_bits_(code_bits) {
    if (num_classes < 2) {
        throw std::invalid_argument("FtnaClassifier: need >= 2 classes");
    }
    if (code_bits < 2) {
        throw std::invalid_argument("FtnaClassifier: need >= 2 code bits");
    }
    // Distinct random codewords, one per class.
    std::set<std::vector<float>> seen;
    codebook_.reserve(num_classes);
    for (std::size_t c = 0; c < num_classes; ++c) {
        std::vector<float> code(code_bits);
        do {
            for (float& bit : code) {
                bit = rng.bernoulli(0.5) ? 1.0F : 0.0F;
            }
        } while (!seen.insert(code).second);
        codebook_.push_back(code);
    }
}

void FtnaClassifier::train(const data::Dataset& train_set,
                           const nn::TrainConfig& config, Rng& rng) {
    nn::Module& net = *model_.net;
    model_.set_dropout_rates(
        std::vector<double>(model_.dropout_sites.size(), 0.0));
    nn::Sgd opt(net.parameters(), config.learning_rate, config.momentum,
                config.weight_decay);
    const std::size_t n = train_set.images.dim(0);
    const std::size_t batch = std::min(config.batch_size, n);
    net.set_training(true);
    for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
        const auto order = rng.permutation(n);
        for (std::size_t lo = 0; lo < n; lo += batch) {
            const std::size_t hi = std::min(lo + batch, n);
            const nn::Batch b = nn::gather_batch(
                train_set.images, train_set.labels, order, lo, hi);
            Tensor targets({b.labels.size(), code_bits_});
            for (std::size_t i = 0; i < b.labels.size(); ++i) {
                const auto& code =
                    codebook_[static_cast<std::size_t>(b.labels[i])];
                std::copy(code.begin(), code.end(),
                          targets.data() + i * code_bits_);
            }
            opt.zero_grad();
            const Tensor logits = net.forward(b.images);
            const nn::LossResult loss = nn::bce_with_logits(logits, targets);
            net.backward(loss.grad);
            opt.step();
        }
    }
}

double FtnaClassifier::evaluate_accuracy(const Tensor& images,
                                         const std::vector<int>& labels) {
    const Tensor logits = nn::predict_logits(*model_.net, images);
    if (logits.dim(1) != code_bits_) {
        throw std::logic_error("FtnaClassifier: model emits wrong code width");
    }
    std::size_t hits = 0;
    for (std::size_t i = 0; i < labels.size(); ++i) {
        // Soft Hamming decode: L1 distance between the sigmoid outputs and
        // each codeword; nearest codeword wins.
        std::size_t best_class = 0;
        double best_dist = std::numeric_limits<double>::infinity();
        for (std::size_t c = 0; c < num_classes_; ++c) {
            double dist = 0.0;
            for (std::size_t bit = 0; bit < code_bits_; ++bit) {
                const double p =
                    1.0 / (1.0 + std::exp(-logits(i, bit)));
                dist += std::abs(p - codebook_[c][bit]);
            }
            if (dist < best_dist) {
                best_dist = dist;
                best_class = c;
            }
        }
        if (best_class == static_cast<std::size_t>(labels[i])) ++hits;
    }
    return labels.empty()
               ? 0.0
               : static_cast<double>(hits) / static_cast<double>(labels.size());
}

}  // namespace bayesft::core
