#pragma once
// The fault-marginalized architecture objective u(alpha, theta)
// (paper Eq. 3-4): the expected quality of a network under hardware
// faults, estimated by Monte-Carlo sampling of fault realizations.
//
// The paper marginalizes over memristance drift only; the objective here is
// generalized over the pluggable FaultModel zoo (stuck-at, bit-flip,
// variation, quantization, compositions) while keeping the drift-only
// configuration as the default, so every paper experiment reproduces
// unchanged.

#include <cstdint>
#include <memory>
#include <vector>

#include "data/dataset.hpp"
#include "fault/evaluator.hpp"
#include "fault/model.hpp"
#include "models/zoo.hpp"
#include "nn/quant.hpp"

namespace bayesft::core {

/// What to average over fault samples.
enum class ObjectiveMetric {
    kAccuracy,  ///< mean classification accuracy (monotone proxy of -loss)
    kNegLoss,   ///< -E[cross-entropy] exactly as Eq. 3
};

/// Configuration of the Monte-Carlo utility estimate.
///
/// The utility marginalizes over a set of fault scenarios: either the
/// paper's log-normal drift levels (`sigmas`, the default) or an explicit
/// list of FaultModel instances (`faults`, which overrides `sigmas` when
/// non-empty — e.g. stuck-at fractions, composed quantize-then-drift
/// chains).
struct ObjectiveConfig {
    /// Drift levels marginalized over when `faults` is empty (the search
    /// trains robustness across this set; evaluation later sweeps a finer
    /// sigma grid).
    std::vector<double> sigmas{0.3, 0.6, 0.9};
    /// Explicit fault scenarios; overrides `sigmas` when non-empty.
    /// Shared pointers so one configured zoo can be reused across
    /// candidate evaluations and threads (FaultModels are immutable, so
    /// sharing is safe).
    std::vector<std::shared_ptr<const fault::FaultModel>> faults;
    /// Monte-Carlo samples T per fault scenario (Eq. 4).
    std::size_t mc_samples = 4;
    ObjectiveMetric metric = ObjectiveMetric::kAccuracy;
    /// Numeric mode of the forward passes scored under faults: kFloat32
    /// (default, the paper's setting) or a fixed-point deployment view
    /// (kInt8 / kInt12 — see nn/quant.hpp).  Applied to the model for the
    /// duration of the evaluation and restored afterwards; per-thread
    /// replicas inherit it through clone().
    nn::InferenceMode inference = nn::InferenceMode::kFloat32;
};

/// Estimates u(alpha, theta) for the model's *current* weights: perturb
/// with every configured fault scenario, score on (images, labels),
/// restore, and average everything.
///
/// Thread safety: the Monte-Carlo loop fans out over per-thread replicas
/// internally (pool width); call from one thread per (model, rng) pair.
double fault_utility(nn::Module& model, const Tensor& images,
                     const std::vector<int>& labels,
                     const ObjectiveConfig& config, Rng& rng);

/// Thin alias from the drift-only era: see fault_utility.
inline double drift_utility(nn::Module& model, const Tensor& images,
                            const std::vector<int>& labels,
                            const ObjectiveConfig& config, Rng& rng) {
    return fault_utility(model, images, labels, config, rng);
}

/// Digests everything the utility depends on besides alpha and the model
/// weights — metric, MC sample count, and the full fault configuration
/// (describe() + params() of every model, or the sigma grid) — into one
/// key for the EvaluationEngine's memoization / RNG-derivation context.
std::uint64_t objective_digest(const ObjectiveConfig& config);

}  // namespace bayesft::core
