#pragma once
// The drift-marginalized architecture objective u(alpha, theta)
// (paper Eq. 3-4): the expected quality of a network under memristance
// drift, estimated by Monte-Carlo sampling of drift realizations.

#include <vector>

#include "data/dataset.hpp"
#include "fault/evaluator.hpp"
#include "models/zoo.hpp"

namespace bayesft::core {

/// What to average over drift samples.
enum class ObjectiveMetric {
    kAccuracy,  ///< mean classification accuracy (monotone proxy of -loss)
    kNegLoss,   ///< -E[cross-entropy] exactly as Eq. 3
};

/// Configuration of the Monte-Carlo utility estimate.
struct ObjectiveConfig {
    /// Drift levels marginalized over (the search trains robustness across
    /// this set; evaluation later sweeps a finer sigma grid).
    std::vector<double> sigmas{0.3, 0.6, 0.9};
    /// Monte-Carlo samples T per sigma (Eq. 4).
    std::size_t mc_samples = 4;
    ObjectiveMetric metric = ObjectiveMetric::kAccuracy;
};

/// Estimates u(alpha, theta) for the model's *current* weights: perturb with
/// LogNormalDrift(sigma) for each configured sigma, score on (images,
/// labels), restore, and average everything.
double drift_utility(nn::Module& model, const Tensor& images,
                     const std::vector<int>& labels,
                     const ObjectiveConfig& config, Rng& rng);

}  // namespace bayesft::core
