#pragma once
// Versioned checkpoint/resume for the Bayesian-optimization searches
// (docs/checkpointing.md).  A SearchCheckpoint is the complete state a
// search needs to continue bit-identically after a process death at a
// trial-group boundary:
//
//   - the BayesOpt canonical form (real trials, initial design + cursor,
//     proposal RNG) — Cholesky factors are recomputed, never stored;
//   - the caller-loop RNG (warmup/training/final-phase draws);
//   - the engine evaluation context (memo/RNG-derivation key + weight
//     stamp) and, for self-contained searches, the memo-cache entries;
//   - for evolving-theta searches (bayesft_search), the model parameters
//     and buffers as raw IEEE-754 bit patterns.
//
// Every floating-point value is persisted as its bit pattern (hex), so a
// save/load round trip is exact.  load_checkpoint validates the format
// version; the search drivers additionally validate the space and scenario
// digests, so a checkpoint can only resume the exact scenario that wrote
// it.  Files are written to "<path>.tmp", fsynced, and renamed into place
// (then the directory is fsynced), so neither a kill during save nor a
// power loss right after it can corrupt or roll back the checkpoint.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "bayesopt/bayesopt.hpp"
#include "nn/module.hpp"
#include "nn/trainer.hpp"
#include "utils/rng.hpp"

namespace bayesft::core {

/// Caller-side checkpoint knobs, embedded in BayesFTConfig and
/// ArchSearchConfig.
struct CheckpointOptions {
    /// Non-empty enables checkpointing: a snapshot is written (atomically)
    /// after every observed candidate group, and a search that finds a
    /// valid checkpoint at this path resumes from it instead of starting
    /// over.
    std::string path;
    /// Stop — with the boundary checkpoint already on disk — after this
    /// many newly observed trials in this invocation (rounded up to the
    /// next group boundary when batching).  0 runs to completion.  Used by
    /// the resume torture tests and the CI resume-smoke job to interrupt a
    /// search at an exact trial boundary without killing the process.
    std::size_t stop_after = 0;

    bool enabled() const { return !path.empty(); }
};

/// One serialized search snapshot.  See the header comment for semantics.
struct SearchCheckpoint {
    /// Format version written by this build.  v2 added the per-trial
    /// status record (docs/robustness.md) — quarantined trials must
    /// survive a resume, or a resumed run would feed a failure's penalty y
    /// to the GP as a real observation under FailPolicy::kExclude.  v3
    /// added the trust-region record (docs/optimizer-scaling.md); v2 files
    /// still load, with the trust region freshly initialized — exactly the
    /// state a v2 writer (which could not have had trust regions enabled)
    /// would resume into.  Anything else is rejected.
    static constexpr std::uint32_t kVersion = 3;
    /// Oldest format version load_checkpoint still accepts.
    static constexpr std::uint32_t kOldestReadableVersion = 2;

    std::string run_id;             ///< free-form label (scenario name)
    std::string build;              ///< git-describe stamp of the writer
    std::uint64_t space_digest = 0;     ///< ParamSpace::digest()
    std::uint64_t scenario_digest = 0;  ///< objective + loop-shape digest
    std::uint64_t context_key = 0;      ///< EvalContext::key (incl. nonce)
    std::uint64_t context_stamp = 0;    ///< EvalContext::stamp
    std::uint64_t trials_done = 0;      ///< observed trials so far
    RngState run_rng;                   ///< caller-loop generator
    bayesopt::BayesOptState bo;         ///< optimizer canonical form
    /// Memo-cache entries (encoded point -> utility) for self-contained
    /// searches; empty for evolving-theta searches whose stamp advances.
    std::vector<std::pair<std::vector<double>, double>> cache;
    /// Flattened model parameters + buffers (float bit patterns) for
    /// evolving-theta searches; empty when the search has no shared model.
    std::vector<std::uint32_t> model_bits;
    /// Internal mask-generator states of the model's dropout layers, in
    /// tree order: weights alone do not determine the continuation — the
    /// next training epoch's masks come from these streams.
    std::vector<RngState> model_rngs;
    /// Digest of the model's parameter names/shapes and buffer shapes;
    /// 0 when model_bits is empty.
    std::uint64_t model_digest = 0;
};

/// The `git describe --always --dirty` stamp baked in at configure time
/// ("unknown" outside a git checkout), recorded in checkpoints and every
/// run-store record so results can be traced back to the code that
/// produced them.
std::string build_stamp();

/// Writes `checkpoint` to `path` atomically (tmp file + rename).
/// Throws std::runtime_error on I/O failure.
void save_checkpoint(const SearchCheckpoint& checkpoint,
                     const std::string& path);

/// Reads a checkpoint written by save_checkpoint.  Throws
/// std::runtime_error on I/O failure, bad magic, version mismatch, or a
/// malformed/truncated file.
SearchCheckpoint load_checkpoint(const std::string& path);

/// True when a regular file exists at `path` (the resume trigger).
bool checkpoint_exists(const std::string& path);

/// fsyncs the file at `path` (no-op on platforms without fsync).  Throws
/// std::runtime_error when the file cannot be opened or synced.
void fsync_file(const std::string& path);

/// fsyncs the directory containing `path`, making a just-renamed or
/// just-created entry durable (no-op on platforms without directory
/// fsync).  Best-effort: failures are swallowed, since some filesystems
/// reject directory fsync while still ordering the rename correctly.
void fsync_parent_dir(const std::string& path);

/// Folds the inner-SGD settings into a scenario digest: resuming a
/// checkpoint under a different training recipe must be rejected.
std::uint64_t mix_train_config(std::uint64_t key,
                               const nn::TrainConfig& train);

/// Folds every proposal-affecting BayesOptConfig knob (initial design,
/// pool sizes, local-perturbation scale, GP noise, duplicate/separation
/// tolerances) into a scenario digest — any of them changes the proposal
/// stream, so a resume under a different value must be rejected.
std::uint64_t mix_bo_config(std::uint64_t key,
                            const bayesopt::BayesOptConfig& config);

/// Folds an RNG state into a scenario digest.  The search drivers fold
/// their entry state: it is a pure function of the caller's seed (and
/// prior stream usage), so a checkpoint can only be resumed by a run with
/// the identical seed.
std::uint64_t mix_rng_state(std::uint64_t key, const RngState& state);

/// Throws std::runtime_error naming the mismatching digest when the
/// checkpoint was written by a different search space or scenario
/// configuration than the live one.
void validate_checkpoint(const SearchCheckpoint& checkpoint,
                         std::uint64_t space_digest,
                         std::uint64_t scenario_digest,
                         const std::string& path);

/// Flattens all parameters then buffers of `model` into float bit
/// patterns, in traversal order.
std::vector<std::uint32_t> snapshot_model(nn::Module& model);

/// Mask-generator states of every RNG-bearing layer (Dropout,
/// AlphaDropout) in deterministic tree pre-order.
std::vector<RngState> snapshot_model_rngs(nn::Module& model);

/// Digests the model structure (parameter names + shapes, buffer shapes,
/// RNG-bearing layer count) so a snapshot can only be restored into a
/// structurally identical model.
std::uint64_t model_structure_digest(nn::Module& model);

/// Restores a snapshot_model() payload.  Throws std::runtime_error on a
/// size mismatch (callers should compare model_structure_digest first for
/// a clearer error).
void restore_model(nn::Module& model, const std::vector<std::uint32_t>& bits);

/// Restores snapshot_model_rngs() states.  Throws std::runtime_error on a
/// count mismatch.
void restore_model_rngs(nn::Module& model,
                        const std::vector<RngState>& states);

}  // namespace bayesft::core
