#pragma once
// Typed mixed search space: the generalization of the scalar dropout-rate
// vector the paper's Algorithm 1 searches over.  A ParamSpace is an ordered
// list of named dimensions — continuous (dropout rates, scale factors),
// integer (depth, widths), and categorical (normalization kind, activation,
// pooling) — and a ParamPoint is one typed assignment.
//
// Encode/decode contract to the GP's R^d view (docs/search-space.md):
//   - continuous dims map to one coordinate in NATIVE units (identity), so a
//     dropout-only space reproduces the historical BoxBounds search bit for
//     bit; decode clamps into [lo, hi].
//   - integer dims map to one coordinate holding the integral value; decode
//     rounds to the nearest integer and clamps into [lo, hi].
//   - categorical dims with k choices map to k one-hot coordinates in
//     [0, 1]; decode takes the argmax (first winner on ties).
// `project` snaps an arbitrary in-box encoded point onto the feasible set
// (clamp / round / one-hot-ify), so an optimizer that proposes through it
// only ever emits points that decode losslessly: decode(encode(p)) == p for
// every feasible p, and encode(decode(x)) == x for every projected x.
//
// Distance logic (batch diversity, duplicate merging) must NOT use raw
// Euclidean distance over the encoded view — a depth dim spanning [1, 8]
// would drown out dropout dims spanning [0, 0.6].  BayesOpt normalizes
// per-dimension by span; see BayesOptConfig.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "bayesopt/bayesopt.hpp"
#include "bayesopt/kernel.hpp"
#include "utils/rng.hpp"

namespace bayesft::core {

/// The three dimension types of the mixed space.
enum class DimKind { kContinuous, kInteger, kCategorical };

/// One named dimension.  Use the ParamSpace::add_* builders; the raw struct
/// is exposed for iteration/introspection.
struct ParamDim {
    std::string name;
    DimKind kind = DimKind::kContinuous;
    double lo = 0.0;  ///< continuous bounds (lo < hi)
    double hi = 1.0;
    std::int64_t ilo = 0;  ///< integer bounds (ilo < ihi), inclusive
    std::int64_t ihi = 1;
    std::vector<std::string> choices;  ///< categorical labels (>= 2)
};

/// One typed assignment, aligned with the owning space's dimensions:
/// continuous dims store the value, integer dims an integral value, and
/// categorical dims the choice index.  Use ParamSpace's typed accessors
/// (real / integer / category) instead of poking `values` directly.
struct ParamPoint {
    std::vector<double> values;

    bool operator==(const ParamPoint& other) const {
        return values == other.values;
    }
};

/// A typed mixed search space with an encode/decode contract to R^d.
class ParamSpace {
public:
    /// Builders (chainable).  Throw std::invalid_argument on malformed or
    /// duplicate-named dimensions.
    ParamSpace& add_continuous(std::string name, double lo, double hi);
    ParamSpace& add_integer(std::string name, std::int64_t lo,
                            std::int64_t hi);
    ParamSpace& add_categorical(std::string name,
                                std::vector<std::string> choices);

    /// The historical dropout-only space: `sites` continuous dims named
    /// "alpha0", "alpha1", ... over [0, max_rate].  Searches over this
    /// space are bit-identical to the pre-ParamSpace BoxBounds path.
    static ParamSpace dropout(std::size_t sites, double max_rate);

    /// Number of typed dimensions.
    std::size_t size() const { return dims_.size(); }
    /// Number of encoded coordinates (categoricals expand to one-hot).
    std::size_t encoded_dims() const { return encoded_dims_; }
    const std::vector<ParamDim>& dims() const { return dims_; }
    const ParamDim& dim(std::size_t i) const { return dims_.at(i); }
    /// Index of a dimension by name; throws std::invalid_argument if absent.
    std::size_t index_of(std::string_view name) const;

    // ----- typed accessors (validate the dimension kind) -----
    double real(const ParamPoint& p, std::string_view name) const;
    std::int64_t integer(const ParamPoint& p, std::string_view name) const;
    const std::string& category(const ParamPoint& p,
                                std::string_view name) const;

    // ----- encode/decode contract -----
    /// Feasible typed point -> encoded R^d view.  Validates the point.
    std::vector<double> encode(const ParamPoint& p) const;
    /// Arbitrary encoded point -> nearest feasible typed point
    /// (clamp / round / argmax).  Size must match encoded_dims().
    ParamPoint decode(const std::vector<double>& encoded) const;
    /// Snaps `encoded` onto the feasible set in place; idempotent, and
    /// exactly encode(decode(encoded)).
    void project(std::vector<double>& encoded) const;
    /// The projection as a self-contained callable (owns copies of the
    /// layout, so it may outlive the space) for BayesOpt's feasibility hook.
    bayesopt::Projection projection() const;

    /// Box bounds of the encoded view: native bounds for numeric dims,
    /// [0, 1] per one-hot coordinate.
    bayesopt::BoxBounds encoded_bounds() const;
    /// One-hot blocks of the encoded view, for the mixed kernel.
    std::vector<bayesopt::CategoricalBlock> categorical_blocks() const;

    /// ARD-SE + Hamming kernel over the encoded view (paper Eq. 9
    /// generalized): continuous dims use `inverse_scale` in native units
    /// (bit-compatible with the historical dropout kernel), integer dims
    /// use inverse_scale / span^2 so correlation decays over a fraction of
    /// the integer range, and each categorical contributes
    /// exp(-hamming_weight) when the choices differ.
    std::shared_ptr<bayesopt::Kernel> kernel(double inverse_scale,
                                             double hamming_weight,
                                             double amplitude = 1.0) const;

    /// Uniform typed sample (continuous uniform / integer uniform / uniform
    /// choice), drawing one variate per typed dimension in order.  For a
    /// dropout-only space this consumes the identical RNG stream as
    /// BoxBounds::sample on the encoded bounds.
    ParamPoint sample(Rng& rng) const;

    /// Throws std::invalid_argument when `p` is malformed (size mismatch,
    /// out-of-bounds value, fractional integer, bad choice index).
    void validate_point(const ParamPoint& p) const;

    /// Structure digest (kinds, names, bounds, choices) for engine context
    /// keys: two spaces digest equal iff they are structurally identical.
    std::uint64_t digest() const;
    /// Digest of a typed point within this space (validates it).
    std::uint64_t digest(const ParamPoint& p) const;

    /// Human-readable rendering, e.g. "norm=batch depth=3 alpha0=0.125".
    std::string describe(const ParamPoint& p) const;

private:
    void reject_duplicate(const std::string& name) const;

    std::vector<ParamDim> dims_;
    std::size_t encoded_dims_ = 0;
};

}  // namespace bayesft::core
