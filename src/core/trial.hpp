#pragma once
// Trial-level failure taxonomy and resilience knobs shared by the
// evaluation engine, the Bayesian-optimization driver, the run store, and
// the checkpoint format (docs/robustness.md).
//
// A trial that diverges (NaN objective), crashes its evaluation, or
// exceeds its wall-clock budget is a *failed trial*, not a dead search:
// the engine reports the failure class alongside the (non-finite) utility,
// the optimizer quarantines the point under a configurable policy, and the
// status is persisted so reports can tabulate failure rates.

#include <cstddef>
#include <optional>
#include <string_view>

namespace bayesft {

/// Outcome class of one candidate evaluation.
enum class TrialStatus {
    kOk = 0,            ///< finished with a finite objective
    kFailedNaN = 1,     ///< diverged: non-finite objective value
    kFailedCrash = 2,   ///< evaluation process/attempt died
    kFailedTimeout = 3  ///< exceeded the per-trial wall-clock budget
};

/// Stable short name ("ok", "failed_nan", ...) used by the run store,
/// checkpoints, and reports.
const char* trial_status_name(TrialStatus status);

/// Inverse of trial_status_name; nullopt for unknown text.
std::optional<TrialStatus> parse_trial_status(std::string_view name);

/// How the optimizer feeds failed trials to the GP surrogate.
enum class FailPolicy {
    /// Keep the quarantined point in the surrogate at `fail_penalty`, so
    /// the acquisition is actively repelled from failing regions.
    kPenalize = 0,
    /// Drop failed trials from the GP fit entirely (the surrogate stays
    /// blind to them; the trial history still records the failure).
    kExclude = 1
};

/// Fault-tolerant trial-execution knobs (docs/robustness.md).  Timeouts,
/// retries, and isolation never change a successful search's results: a
/// retried attempt replays the same deterministic candidate stream, so —
/// like the thread count — none of these fields enter scenario digests.
struct ResilienceConfig {
    /// Evaluate each self-contained candidate in a forked child process,
    /// so a segfault/OOM in one candidate is a failed trial instead of a
    /// dead search.  Only point evaluations (arch_search) support
    /// isolation; evolving-weights searches fall back to in-process
    /// fault handling.
    bool isolate = false;
    /// Per-trial wall-clock budget in seconds; an attempt exceeding it is
    /// recorded failed_timeout (isolated children are SIGKILLed at the
    /// deadline).  0 disables the timeout.
    double timeout_seconds = 0.0;
    /// Failed attempts are retried up to this many times before the trial
    /// is quarantined.
    std::size_t max_retries = 2;
    /// Base delay between retry attempts.  The actual delay is derived
    /// deterministically from the candidate seed and attempt index (never
    /// from the wall clock), growing with each attempt.
    double backoff_seconds = 0.005;
};

}  // namespace bayesft
