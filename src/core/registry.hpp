#pragma once
// Unified experiment registry: every reproduced scenario — the Fig. 2
// architecture ablations, the Fig. 3 method-comparison panels (including
// detection), the fault-model-zoo variants (stuck-at, bit-flip, variation,
// quantization, composed deployment chains; family "faults"), the typed
// mixed-space architecture searches (norm/activation/depth/width searched
// jointly with dropout; family "archsearch"), the search-strategy and
// MC-sample ablations, and a CI-sized toy task —
// registered by name behind one entry point, so a single `experiments`
// binary (and tests, and CI) can list and run any of them instead of one
// hand-rolled driver per figure.  docs/experiments.md documents every
// scenario with its paper figure, expected runtime, and CLI invocation.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "utils/table.hpp"

namespace bayesft::core {

/// Caller-side knobs shared by all registered experiments.
struct RunOptions {
    /// Shrinks datasets / epochs / MC samples for a fast smoke run (the
    /// same scaling the benches apply under BAYESFT_QUICK=1).
    bool quick = false;
    /// BayesFT candidate batch size q handed to the evaluation engine.
    std::size_t batch = 1;
    /// Evaluation-engine concurrency (0 = pool width).
    std::size_t threads = 0;
    /// Distributed evaluation (docs/distributed.md): fork this many
    /// persistent worker processes and farm self-contained candidate
    /// evaluations to them (0 = in-process).  Result-invariant like
    /// `threads`; only scenarios with ExperimentSpec::distributable honour
    /// it (the CLI rejects it elsewhere).
    std::size_t workers = 0;
    /// Overrides the scenario's base seed when non-zero.
    std::uint64_t seed = 0;
    /// Checkpoint file path handed to the scenario's search driver
    /// (docs/checkpointing.md).  Only scenarios that run a BO search
    /// honour it; empty disables checkpointing.
    std::string checkpoint;
    /// Stop the search — checkpoint on disk — after this many newly
    /// observed trials (0 = run to completion).  Requires `checkpoint`.
    std::size_t stop_after = 0;
    /// Fault-tolerant trial execution (docs/robustness.md).  `isolate`
    /// forks each self-contained candidate evaluation into a crash-isolated
    /// child (archsearch scenarios); `trial_timeout` (seconds, 0 = none)
    /// SIGKILLs / classifies trials past the deadline; `max_retries` bounds
    /// the re-attempts before a trial is quarantined.  All of them are
    /// result-invariant, like `threads`.
    bool isolate = false;
    double trial_timeout = 0.0;
    std::size_t max_retries = 2;
    /// How quarantined trials reach the GP: "penalize" (observed at the
    /// fail penalty) or "exclude" (kept out of the surrogate).  Unlike the
    /// knobs above this one shapes the proposal stream, so it is part of
    /// the scenario digest.
    std::string fail_policy = "penalize";
    /// Numeric mode of the fixed-point inference scenarios
    /// ("float32" | "int8" | "int12"; nn/quant.hpp, docs/performance.md).
    /// Scenarios that compare against a fixed-point forward use it to pick
    /// the word width; "float32" means "the scenario's default width".
    std::string inference = "float32";
    /// TuRBO-style trust-region local BO (docs/optimizer-scaling.md):
    /// past `tr_after` observed trials, proposals come from an adaptive
    /// box around the incumbent scored by a local surrogate.  Opt-in —
    /// unlike the engine knobs above it shapes the proposal stream, so it
    /// is folded into the scenario digest (only when enabled, keeping
    /// every pre-existing checkpoint valid).
    bool trust_region = false;
    std::size_t tr_after = 500;
};

/// One labeled series of an experiment (method or model variant).
struct NamedCurve {
    std::string label;
    std::vector<double> values;  ///< aligned with RegistryResult::xs
};

/// One observed search trial, in decoded human-readable form — the unit
/// the JSONL run store persists (core/runstore.hpp).
struct TrialRecord {
    std::size_t index = 0;   ///< global trial index within the search
    std::string point;       ///< e.g. "alpha0=0.125 alpha1=0.3"
    double objective = 0.0;
    /// Trial outcome class (trial_status_name: "ok", "failed_nan",
    /// "failed_crash", "failed_timeout").
    std::string status = "ok";
};

/// Normalized result shape every registered experiment produces.
struct RegistryResult {
    std::string experiment;
    std::string x_label;  ///< "sigma", "mc_samples", "trial_budget", ...
    std::vector<double> xs;
    std::vector<NamedCurve> curves;
    std::vector<double> bayesft_alpha;  ///< when a BayesFT search ran
    /// Free-form result note, e.g. the decoded best architecture point of
    /// an archsearch scenario ("norm=batch activation=gelu ...").
    std::string annotation;
    /// Full BO trial history of the scenario's search (empty when the
    /// scenario runs no search).  Feeds the run store.
    std::vector<TrialRecord> trials;
    /// Leading trials restored from a checkpoint: a prior invocation
    /// already persisted them, so the run store appends only the rest.
    std::size_t resumed_trials = 0;
    /// False when the search halted at RunOptions::stop_after; the
    /// searched method's curves are then absent (re-run with the same
    /// checkpoint path to resume and finish the figure).
    bool search_completed = true;
    double seconds = 0.0;               ///< wall clock of the run

    /// Rows = xs, columns = curves.  `scale` multiplies values (100 for
    /// accuracy -> percent).
    ResultTable to_table(const std::string& title, double scale) const;
};

/// A registered scenario.
struct ExperimentSpec {
    std::string name;         ///< e.g. "fig3a_mlp_mnist"
    /// "fig2" | "fig3" | "faults" | "archsearch" | "ablation" | "toy"
    std::string family;
    std::string description;  ///< one line for --list
    std::function<RegistryResult(const RunOptions&)> run;
    /// True when the scenario wires RunOptions::checkpoint/stop_after into
    /// its search driver; the CLI rejects --checkpoint for scenarios that
    /// would silently ignore it (pure sweeps, the hand-rolled fig3j
    /// detection loop, the multi-search ablation).
    bool checkpointable = false;
    /// True when the scenario's candidate evaluations are self-contained
    /// (a pure function of the encoded point — the archsearch family) and
    /// RunOptions::workers is wired into its search driver.  The CLI
    /// rejects --workers elsewhere: evolving-theta searches cannot ship
    /// their weights across the worker pipe.
    bool distributable = false;
};

/// Name -> scenario lookup over all built-in experiments.
///
/// Thread safety: `instance()` is initialized once (magic static); the
/// const lookups (list/names/find/run) are safe to call concurrently.
/// `add` mutates the spec list and must not race with lookups.
class ExperimentRegistry {
public:
    /// The global registry with every built-in scenario registered.
    static const ExperimentRegistry& instance();

    /// Registers a scenario; throws std::invalid_argument on a duplicate
    /// or empty name.
    void add(ExperimentSpec spec);

    /// All specs in registration order.
    const std::vector<ExperimentSpec>& list() const { return specs_; }
    std::vector<std::string> names() const;

    /// nullptr when unknown.
    const ExperimentSpec* find(const std::string& name) const;

    /// Runs by name; throws std::invalid_argument for unknown names.
    RegistryResult run(const std::string& name,
                       const RunOptions& options) const;

private:
    std::vector<ExperimentSpec> specs_;
};

}  // namespace bayesft::core
