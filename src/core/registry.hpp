#pragma once
// Unified experiment registry: every reproduced scenario — the Fig. 2
// architecture ablations, the Fig. 3 method-comparison panels (including
// detection), the fault-model-zoo variants (stuck-at, bit-flip, variation,
// quantization, composed deployment chains; family "faults"), the typed
// mixed-space architecture searches (norm/activation/depth/width searched
// jointly with dropout; family "archsearch"), the search-strategy and
// MC-sample ablations, and a CI-sized toy task —
// registered by name behind one entry point, so a single `experiments`
// binary (and tests, and CI) can list and run any of them instead of one
// hand-rolled driver per figure.  docs/experiments.md documents every
// scenario with its paper figure, expected runtime, and CLI invocation.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "utils/table.hpp"

namespace bayesft::core {

/// Caller-side knobs shared by all registered experiments.
struct RunOptions {
    /// Shrinks datasets / epochs / MC samples for a fast smoke run (the
    /// same scaling the benches apply under BAYESFT_QUICK=1).
    bool quick = false;
    /// BayesFT candidate batch size q handed to the evaluation engine.
    std::size_t batch = 1;
    /// Evaluation-engine concurrency (0 = pool width).
    std::size_t threads = 0;
    /// Overrides the scenario's base seed when non-zero.
    std::uint64_t seed = 0;
};

/// One labeled series of an experiment (method or model variant).
struct NamedCurve {
    std::string label;
    std::vector<double> values;  ///< aligned with RegistryResult::xs
};

/// Normalized result shape every registered experiment produces.
struct RegistryResult {
    std::string experiment;
    std::string x_label;  ///< "sigma", "mc_samples", "trial_budget", ...
    std::vector<double> xs;
    std::vector<NamedCurve> curves;
    std::vector<double> bayesft_alpha;  ///< when a BayesFT search ran
    /// Free-form result note, e.g. the decoded best architecture point of
    /// an archsearch scenario ("norm=batch activation=gelu ...").
    std::string annotation;
    double seconds = 0.0;               ///< wall clock of the run

    /// Rows = xs, columns = curves.  `scale` multiplies values (100 for
    /// accuracy -> percent).
    ResultTable to_table(const std::string& title, double scale) const;
};

/// A registered scenario.
struct ExperimentSpec {
    std::string name;         ///< e.g. "fig3a_mlp_mnist"
    /// "fig2" | "fig3" | "faults" | "archsearch" | "ablation" | "toy"
    std::string family;
    std::string description;  ///< one line for --list
    std::function<RegistryResult(const RunOptions&)> run;
};

/// Name -> scenario lookup over all built-in experiments.
///
/// Thread safety: `instance()` is initialized once (magic static); the
/// const lookups (list/names/find/run) are safe to call concurrently.
/// `add` mutates the spec list and must not race with lookups.
class ExperimentRegistry {
public:
    /// The global registry with every built-in scenario registered.
    static const ExperimentRegistry& instance();

    /// Registers a scenario; throws std::invalid_argument on a duplicate
    /// or empty name.
    void add(ExperimentSpec spec);

    /// All specs in registration order.
    const std::vector<ExperimentSpec>& list() const { return specs_; }
    std::vector<std::string> names() const;

    /// nullptr when unknown.
    const ExperimentSpec* find(const std::string& name) const;

    /// Runs by name; throws std::invalid_argument for unknown names.
    RegistryResult run(const std::string& name,
                       const RunOptions& options) const;

private:
    std::vector<ExperimentSpec> specs_;
};

}  // namespace bayesft::core
