#include "core/param_space.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "core/engine.hpp"

namespace bayesft::core {

void ParamSpace::reject_duplicate(const std::string& name) const {
    if (name.empty()) {
        throw std::invalid_argument("ParamSpace: empty dimension name");
    }
    for (const ParamDim& d : dims_) {
        if (d.name == name) {
            throw std::invalid_argument("ParamSpace: duplicate dimension '" +
                                        name + "'");
        }
    }
}

ParamSpace& ParamSpace::add_continuous(std::string name, double lo,
                                       double hi) {
    reject_duplicate(name);
    if (!(lo < hi)) {
        throw std::invalid_argument("ParamSpace: continuous '" + name +
                                    "' needs lo < hi");
    }
    ParamDim dim;
    dim.name = std::move(name);
    dim.kind = DimKind::kContinuous;
    dim.lo = lo;
    dim.hi = hi;
    dims_.push_back(std::move(dim));
    encoded_dims_ += 1;
    return *this;
}

ParamSpace& ParamSpace::add_integer(std::string name, std::int64_t lo,
                                    std::int64_t hi) {
    reject_duplicate(name);
    if (!(lo < hi)) {
        throw std::invalid_argument("ParamSpace: integer '" + name +
                                    "' needs lo < hi");
    }
    ParamDim dim;
    dim.name = std::move(name);
    dim.kind = DimKind::kInteger;
    dim.ilo = lo;
    dim.ihi = hi;
    dims_.push_back(std::move(dim));
    encoded_dims_ += 1;
    return *this;
}

ParamSpace& ParamSpace::add_categorical(std::string name,
                                        std::vector<std::string> choices) {
    reject_duplicate(name);
    if (choices.size() < 2) {
        throw std::invalid_argument("ParamSpace: categorical '" + name +
                                    "' needs >= 2 choices");
    }
    for (std::size_t i = 0; i < choices.size(); ++i) {
        if (choices[i].empty()) {
            throw std::invalid_argument("ParamSpace: categorical '" + name +
                                        "' has an empty choice");
        }
        for (std::size_t j = i + 1; j < choices.size(); ++j) {
            if (choices[i] == choices[j]) {
                throw std::invalid_argument("ParamSpace: categorical '" +
                                            name + "' repeats choice '" +
                                            choices[i] + "'");
            }
        }
    }
    ParamDim dim;
    dim.name = std::move(name);
    dim.kind = DimKind::kCategorical;
    dim.choices = std::move(choices);
    dims_.push_back(std::move(dim));
    encoded_dims_ += dims_.back().choices.size();
    return *this;
}

ParamSpace ParamSpace::dropout(std::size_t sites, double max_rate) {
    if (sites == 0) {
        throw std::invalid_argument("ParamSpace::dropout: zero sites");
    }
    if (!(max_rate > 0.0) || max_rate >= 1.0) {
        throw std::invalid_argument(
            "ParamSpace::dropout: max_rate must be in (0, 1)");
    }
    ParamSpace space;
    for (std::size_t i = 0; i < sites; ++i) {
        space.add_continuous("alpha" + std::to_string(i), 0.0, max_rate);
    }
    return space;
}

std::size_t ParamSpace::index_of(std::string_view name) const {
    for (std::size_t i = 0; i < dims_.size(); ++i) {
        if (dims_[i].name == name) return i;
    }
    throw std::invalid_argument("ParamSpace: no dimension named '" +
                                std::string(name) + "'");
}

double ParamSpace::real(const ParamPoint& p, std::string_view name) const {
    const std::size_t i = index_of(name);
    if (dims_[i].kind != DimKind::kContinuous) {
        throw std::invalid_argument("ParamSpace: '" + std::string(name) +
                                    "' is not continuous");
    }
    return p.values.at(i);
}

std::int64_t ParamSpace::integer(const ParamPoint& p,
                                 std::string_view name) const {
    const std::size_t i = index_of(name);
    if (dims_[i].kind != DimKind::kInteger) {
        throw std::invalid_argument("ParamSpace: '" + std::string(name) +
                                    "' is not integer");
    }
    return static_cast<std::int64_t>(p.values.at(i));
}

const std::string& ParamSpace::category(const ParamPoint& p,
                                        std::string_view name) const {
    const std::size_t i = index_of(name);
    if (dims_[i].kind != DimKind::kCategorical) {
        throw std::invalid_argument("ParamSpace: '" + std::string(name) +
                                    "' is not categorical");
    }
    const auto index = static_cast<std::size_t>(p.values.at(i));
    return dims_[i].choices.at(index);
}

void ParamSpace::validate_point(const ParamPoint& p) const {
    if (p.values.size() != dims_.size()) {
        throw std::invalid_argument(
            "ParamSpace: point has " + std::to_string(p.values.size()) +
            " values, space has " + std::to_string(dims_.size()) + " dims");
    }
    for (std::size_t i = 0; i < dims_.size(); ++i) {
        const ParamDim& dim = dims_[i];
        const double v = p.values[i];
        switch (dim.kind) {
            case DimKind::kContinuous:
                if (!(v >= dim.lo) || !(v <= dim.hi)) {
                    throw std::invalid_argument(
                        "ParamSpace: '" + dim.name + "' out of bounds");
                }
                break;
            case DimKind::kInteger: {
                if (v != std::floor(v)) {
                    throw std::invalid_argument("ParamSpace: '" + dim.name +
                                                "' is not integral");
                }
                const auto iv = static_cast<std::int64_t>(v);
                if (iv < dim.ilo || iv > dim.ihi) {
                    throw std::invalid_argument(
                        "ParamSpace: '" + dim.name + "' out of bounds");
                }
                break;
            }
            case DimKind::kCategorical: {
                if (v != std::floor(v) || v < 0.0 ||
                    v >= static_cast<double>(dim.choices.size())) {
                    throw std::invalid_argument("ParamSpace: '" + dim.name +
                                                "' has a bad choice index");
                }
                break;
            }
        }
    }
}

std::vector<double> ParamSpace::encode(const ParamPoint& p) const {
    validate_point(p);
    std::vector<double> encoded;
    encoded.reserve(encoded_dims_);
    for (std::size_t i = 0; i < dims_.size(); ++i) {
        const ParamDim& dim = dims_[i];
        if (dim.kind == DimKind::kCategorical) {
            const auto index = static_cast<std::size_t>(p.values[i]);
            for (std::size_t c = 0; c < dim.choices.size(); ++c) {
                encoded.push_back(c == index ? 1.0 : 0.0);
            }
        } else {
            encoded.push_back(p.values[i]);
        }
    }
    return encoded;
}

ParamPoint ParamSpace::decode(const std::vector<double>& encoded) const {
    if (encoded.size() != encoded_dims_) {
        throw std::invalid_argument(
            "ParamSpace::decode: expected " + std::to_string(encoded_dims_) +
            " coordinates, got " + std::to_string(encoded.size()));
    }
    ParamPoint point;
    point.values.reserve(dims_.size());
    std::size_t at = 0;
    for (const ParamDim& dim : dims_) {
        switch (dim.kind) {
            case DimKind::kContinuous:
                point.values.push_back(
                    std::clamp(encoded[at], dim.lo, dim.hi));
                at += 1;
                break;
            case DimKind::kInteger: {
                const auto rounded =
                    static_cast<std::int64_t>(std::llround(encoded[at]));
                point.values.push_back(static_cast<double>(
                    std::clamp(rounded, dim.ilo, dim.ihi)));
                at += 1;
                break;
            }
            case DimKind::kCategorical: {
                std::size_t best = 0;
                for (std::size_t c = 1; c < dim.choices.size(); ++c) {
                    if (encoded[at + c] > encoded[at + best]) best = c;
                }
                point.values.push_back(static_cast<double>(best));
                at += dim.choices.size();
                break;
            }
        }
    }
    return point;
}

void ParamSpace::project(std::vector<double>& encoded) const {
    // encode(decode(encoded)), done in place.
    const ParamPoint point = decode(encoded);
    std::size_t at = 0;
    for (std::size_t i = 0; i < dims_.size(); ++i) {
        const ParamDim& dim = dims_[i];
        if (dim.kind == DimKind::kCategorical) {
            const auto index = static_cast<std::size_t>(point.values[i]);
            for (std::size_t c = 0; c < dim.choices.size(); ++c) {
                encoded[at + c] = (c == index) ? 1.0 : 0.0;
            }
            at += dim.choices.size();
        } else {
            encoded[at] = point.values[i];
            at += 1;
        }
    }
}

bayesopt::Projection ParamSpace::projection() const {
    // Self-contained copy of the space so the callable may outlive it.
    return [space = *this](bayesopt::Point& p) { space.project(p); };
}

bayesopt::BoxBounds ParamSpace::encoded_bounds() const {
    if (dims_.empty()) {
        throw std::invalid_argument("ParamSpace: empty space has no bounds");
    }
    bayesopt::BoxBounds bounds;
    bounds.lower.reserve(encoded_dims_);
    bounds.upper.reserve(encoded_dims_);
    for (const ParamDim& dim : dims_) {
        switch (dim.kind) {
            case DimKind::kContinuous:
                bounds.lower.push_back(dim.lo);
                bounds.upper.push_back(dim.hi);
                break;
            case DimKind::kInteger:
                bounds.lower.push_back(static_cast<double>(dim.ilo));
                bounds.upper.push_back(static_cast<double>(dim.ihi));
                break;
            case DimKind::kCategorical:
                for (std::size_t c = 0; c < dim.choices.size(); ++c) {
                    bounds.lower.push_back(0.0);
                    bounds.upper.push_back(1.0);
                }
                break;
        }
    }
    bounds.validate();
    return bounds;
}

std::vector<bayesopt::CategoricalBlock> ParamSpace::categorical_blocks()
    const {
    std::vector<bayesopt::CategoricalBlock> blocks;
    std::size_t at = 0;
    for (const ParamDim& dim : dims_) {
        if (dim.kind == DimKind::kCategorical) {
            blocks.push_back({at, dim.choices.size()});
            at += dim.choices.size();
        } else {
            at += 1;
        }
    }
    return blocks;
}

std::shared_ptr<bayesopt::Kernel> ParamSpace::kernel(
    double inverse_scale, double hamming_weight, double amplitude) const {
    if (!(inverse_scale > 0.0)) {
        throw std::invalid_argument(
            "ParamSpace::kernel: inverse_scale must be > 0");
    }
    std::vector<double> scales;
    scales.reserve(encoded_dims_);
    for (const ParamDim& dim : dims_) {
        switch (dim.kind) {
            case DimKind::kContinuous:
                // Native units: paper Eq. 9 semantics on dropout rates, and
                // bit-compatibility with the historical ARD-SE kernel.
                scales.push_back(inverse_scale);
                break;
            case DimKind::kInteger: {
                // Span-normalized: correlation decays over a fraction of
                // the integer range, not per unit step.
                const double span = static_cast<double>(dim.ihi - dim.ilo);
                scales.push_back(inverse_scale / (span * span));
                break;
            }
            case DimKind::kCategorical:
                for (std::size_t c = 0; c < dim.choices.size(); ++c) {
                    scales.push_back(1.0);  // ignored under the block
                }
                break;
        }
    }
    return std::make_shared<bayesopt::MixedArdSquaredExponential>(
        std::move(scales), categorical_blocks(), hamming_weight, amplitude);
}

ParamPoint ParamSpace::sample(Rng& rng) const {
    ParamPoint point;
    point.values.reserve(dims_.size());
    for (const ParamDim& dim : dims_) {
        switch (dim.kind) {
            case DimKind::kContinuous:
                point.values.push_back(rng.uniform(dim.lo, dim.hi));
                break;
            case DimKind::kInteger:
                point.values.push_back(static_cast<double>(
                    rng.uniform_int(dim.ilo, dim.ihi)));
                break;
            case DimKind::kCategorical:
                point.values.push_back(static_cast<double>(rng.uniform_int(
                    static_cast<std::uint64_t>(dim.choices.size()))));
                break;
        }
    }
    return point;
}

std::uint64_t ParamSpace::digest() const {
    std::uint64_t key = mix_key(0, static_cast<std::uint64_t>(dims_.size()));
    for (const ParamDim& dim : dims_) {
        key = mix_key(key, static_cast<std::uint64_t>(dim.kind));
        key = mix_key(key, dim.name);
        switch (dim.kind) {
            case DimKind::kContinuous: {
                const double bounds[2] = {dim.lo, dim.hi};
                key = mix_key(key, bounds, 2);
                break;
            }
            case DimKind::kInteger:
                key = mix_key(key, static_cast<std::uint64_t>(dim.ilo));
                key = mix_key(key, static_cast<std::uint64_t>(dim.ihi));
                break;
            case DimKind::kCategorical:
                for (const std::string& choice : dim.choices) {
                    key = mix_key(key, choice);
                }
                break;
        }
    }
    return key;
}

std::uint64_t ParamSpace::digest(const ParamPoint& p) const {
    validate_point(p);
    return mix_key(digest(), p.values.data(), p.values.size());
}

std::string ParamSpace::describe(const ParamPoint& p) const {
    validate_point(p);
    std::ostringstream os;
    for (std::size_t i = 0; i < dims_.size(); ++i) {
        if (i > 0) os << ' ';
        const ParamDim& dim = dims_[i];
        os << dim.name << '=';
        switch (dim.kind) {
            case DimKind::kContinuous:
                os << std::fixed << std::setprecision(3) << p.values[i]
                   << std::defaultfloat;
                break;
            case DimKind::kInteger:
                os << static_cast<std::int64_t>(p.values[i]);
                break;
            case DimKind::kCategorical:
                os << dim.choices[static_cast<std::size_t>(p.values[i])];
                break;
        }
    }
    return os.str();
}

}  // namespace bayesft::core
