#include "core/bayesft.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>

#include "core/engine.hpp"
#include "core/param_space.hpp"
#include "utils/logging.hpp"

namespace bayesft::core {

namespace {

/// Decoded, human-readable points for the run store, in trial order.
std::vector<std::string> describe_trials(
    const ParamSpace& space, const std::vector<bayesopt::Trial>& trials) {
    std::vector<std::string> points;
    points.reserve(trials.size());
    for (const bayesopt::Trial& trial : trials) {
        points.push_back(space.describe(space.decode(trial.x)));
    }
    return points;
}

/// Everything that shapes the dropout search besides the RNG streams; a
/// checkpoint written under any other value resumes nothing.
std::uint64_t bayesft_scenario_digest(const BayesFTConfig& config,
                                      bool use_gp, const RngState& entry) {
    std::uint64_t key = objective_digest(config.objective);
    key = mix_key(key, static_cast<std::uint64_t>(config.iterations));
    key = mix_key(key,
                  static_cast<std::uint64_t>(config.epochs_per_iteration));
    key = mix_key(key, static_cast<std::uint64_t>(config.warmup_epochs));
    key = mix_key(key, static_cast<std::uint64_t>(config.final_epochs));
    key = mix_key(key, static_cast<std::uint64_t>(
                           std::max<std::size_t>(1, config.batch)));
    key = mix_key(key, static_cast<std::uint64_t>(use_gp ? 1 : 0));
    key = mix_key(key, std::string_view(config.acquisition));
    const double reals[] = {config.kernel_inverse_scale,
                            config.max_dropout_rate};
    key = mix_key(key, reals, 2);
    key = mix_bo_config(key, config.bo);
    key = mix_train_config(key, config.train);
    return mix_rng_state(key, entry);
}

/// Shared loop body for GP-guided and random search: groups of q candidates
/// are proposed (suggest_batch or uniform sampling), handed to the
/// EvaluationEngine (per-candidate replicas, winner adoption), and the
/// outcomes are reported back to the surrogate in one observe_batch.
BayesFTResult run_search(
    models::ModelHandle& model, const data::Dataset& train_set,
    const data::Dataset& validation_set, const BayesFTConfig& config,
    Rng& rng, bool use_gp) {
    if (model.dropout_sites.empty()) {
        throw std::invalid_argument(
            "bayesft_search: model has no dropout sites to search over");
    }
    if (config.iterations == 0) {
        throw std::invalid_argument("bayesft_search: zero iterations");
    }
    if (!(config.max_dropout_rate > 0.0) || config.max_dropout_rate >= 1.0) {
        throw std::invalid_argument(
            "bayesft_search: max_dropout_rate must be in (0, 1)");
    }
    const std::size_t dims = model.dropout_sites.size();

    // The dropout vector as a typed search space: all-continuous dims in
    // native units, so the encoded view, kernel values, and RNG streams are
    // bit-identical to the historical BoxBounds path (gtest-enforced by
    // the serial-reference comparison in tests/test_engine.cpp).
    const ParamSpace space =
        ParamSpace::dropout(dims, config.max_dropout_rate);
    const std::uint64_t scenario_digest =
        bayesft_scenario_digest(config, use_gp, rng.state());
    bayesopt::BayesOpt bo(space.encoded_bounds(),
                          space.kernel(config.kernel_inverse_scale,
                                       /*hamming_weight=*/1.0),
                          bayesopt::make_acquisition(config.acquisition),
                          config.bo, rng.split(), space.projection());

    nn::TrainConfig epoch_config = config.train;
    epoch_config.epochs = config.epochs_per_iteration;

    const std::size_t q = std::max<std::size_t>(1, config.batch);
    EvalContext context;
    std::size_t done = 0;
    std::size_t resumed = 0;
    if (config.checkpoint.enabled() &&
        checkpoint_exists(config.checkpoint.path)) {
        // Resume: restore the optimizer, the loop RNG (which replaces the
        // warmup/nonce draws a fresh run would have made), the evaluation
        // context, and the trained weights, then continue the trial loop
        // as if the writing run had never stopped.
        const SearchCheckpoint cp =
            load_checkpoint(config.checkpoint.path);
        validate_checkpoint(cp, space.digest(), scenario_digest,
                            config.checkpoint.path);
        if (cp.model_digest != model_structure_digest(*model.net)) {
            throw std::runtime_error(
                "checkpoint: model structure mismatch — the checkpoint at " +
                config.checkpoint.path +
                " was written for a different architecture");
        }
        if (cp.trials_done > config.iterations) {
            throw std::runtime_error(
                "checkpoint: " + config.checkpoint.path + " holds " +
                std::to_string(cp.trials_done) +
                " trials but the configured budget is " +
                std::to_string(config.iterations));
        }
        restore_model(*model.net, cp.model_bits);
        restore_model_rngs(*model.net, cp.model_rngs);
        bo.import_state(cp.bo);
        rng.set_state(cp.run_rng);
        context.key = cp.context_key;
        context.stamp = cp.context_stamp;
        done = cp.trials_done;
        resumed = done;
        log_info() << "BayesFT resumed from " << config.checkpoint.path
                   << " at trial " << done << "/" << config.iterations;
    } else {
        if (config.warmup_epochs > 0) {
            // Warm-up at alpha = 0 so theta starts the search trainable.
            model.set_dropout_rates(std::vector<double>(dims, 0.0));
            nn::TrainConfig warmup = config.train;
            warmup.epochs = config.warmup_epochs;
            nn::train_classifier(*model.net, train_set.images,
                                 train_set.labels, warmup, rng);
        }
        context.key = objective_digest(config.objective);
        context.key = mix_key(context.key,
                              static_cast<std::uint64_t>(
                                  config.epochs_per_iteration));
        if (q > 1) {
            // Per-run nonce: batched candidate RNG streams derive from the
            // context key, so without this two searches differing only in
            // seed would reuse identical noise for identical (alpha, stamp)
            // pairs.  Never drawn at q == 1, which must replay the serial
            // loop exactly.
            context.key = mix_key(context.key, rng());
        }
    }

    EngineConfig engine_config;
    engine_config.threads = config.eval_threads;
    engine_config.resilience = config.resilience;
    // Crash isolation and distributed workers never apply here (evolving
    // theta cannot cross a child pipe); the in-process guards — timeout
    // classification, retries with state rollback, quarantine — carry the
    // fault tolerance.
    engine_config.resilience.isolate = false;
    engine_config.workers = 0;
    EvaluationEngine engine(engine_config);
    // Alg. 1 lines 5-9 for one candidate: continue training theta under the
    // candidate dropout configuration, then score the Monte-Carlo
    // fault-marginalized utility (Eq. 4) on held-out data — under whatever
    // FaultModel set the objective configures (drift by default).
    const CandidateEvaluator evaluator =
        [&](models::ModelHandle& candidate, const Alpha&, Rng& r) {
            nn::train_classifier(*candidate.net, train_set.images,
                                 train_set.labels, epoch_config, r);
            return fault_utility(*candidate.net, validation_set.images,
                                 validation_set.labels, config.objective, r);
        };

    const auto write_checkpoint = [&]() {
        SearchCheckpoint cp;
        cp.run_id = use_gp ? "bayesft_search" : "random_search";
        cp.build = build_stamp();
        cp.space_digest = space.digest();
        cp.scenario_digest = scenario_digest;
        cp.context_key = context.key;
        cp.context_stamp = context.stamp;
        cp.trials_done = done;
        cp.run_rng = rng.state();
        cp.bo = bo.export_state();
        cp.model_bits = snapshot_model(*model.net);
        cp.model_rngs = snapshot_model_rngs(*model.net);
        cp.model_digest = model_structure_digest(*model.net);
        save_checkpoint(cp, config.checkpoint.path);
    };

    std::size_t new_trials = 0;
    while (done < config.iterations) {
        const std::size_t group = std::min(q, config.iterations - done);
        std::vector<bayesopt::Point> alphas;
        if (use_gp) {
            alphas = bo.suggest_batch(group);
        } else {
            alphas.reserve(group);
            for (std::size_t j = 0; j < group; ++j) {
                // Typed uniform sampling; for the all-continuous dropout
                // space this draws the same stream BoxBounds::sample drew.
                alphas.push_back(space.encode(space.sample(rng)));
            }
        }
        const BatchOutcome outcome = engine.evaluate_batch(
            model, alphas, evaluator, rng, context, /*adopt_winner=*/true);
        bo.observe_batch(alphas, outcome.utilities, outcome.statuses);
        for (std::size_t j = 0; j < group; ++j) {
            log_debug() << "BayesFT iter " << (done + j) << " utility "
                        << outcome.utilities[j];
        }
        done += group;
        new_trials += group;
        ++context.stamp;  // theta advanced: cached utilities are stale
        if (config.checkpoint.enabled()) {
            write_checkpoint();
            if (config.checkpoint.stop_after != 0 &&
                new_trials >= config.checkpoint.stop_after &&
                done < config.iterations) {
                // Interrupted at a trial-group boundary: the boundary
                // checkpoint is on disk, the winner stays uninstalled.
                BayesFTResult partial;
                const auto best = bo.best();
                partial.best_alpha = best->x;
                partial.best_utility = best->y;
                partial.trials = bo.trials();
                partial.trial_points = describe_trials(space, partial.trials);
                partial.engine_cache_hits = engine.cache_hits();
                partial.completed = false;
                partial.resumed_trials = resumed;
                return partial;
            }
        }
    }

    BayesFTResult result;
    const auto best = bo.best();
    result.best_alpha = best->x;
    result.best_utility = best->y;
    result.trials = bo.trials();
    result.trial_points = describe_trials(space, result.trials);
    result.engine_cache_hits = engine.cache_hits();
    result.resumed_trials = resumed;

    // Install the winner and fine-tune theta under it.
    model.set_dropout_rates(result.best_alpha);
    if (config.final_epochs > 0) {
        nn::TrainConfig final_config = config.train;
        final_config.epochs = config.final_epochs;
        nn::train_classifier(*model.net, train_set.images, train_set.labels,
                             final_config, rng);
    }
    return result;
}

}  // namespace

BayesFTResult bayesft_search(models::ModelHandle& model,
                             const data::Dataset& train_set,
                             const data::Dataset& validation_set,
                             const BayesFTConfig& config, Rng& rng) {
    return run_search(model, train_set, validation_set, config, rng,
                      /*use_gp=*/true);
}

BayesFTResult random_search(models::ModelHandle& model,
                            const data::Dataset& train_set,
                            const data::Dataset& validation_set,
                            const BayesFTConfig& config, Rng& rng) {
    return run_search(model, train_set, validation_set, config, rng,
                      /*use_gp=*/false);
}

}  // namespace bayesft::core
