#include "core/bayesft.hpp"

#include <memory>
#include <stdexcept>

#include "utils/logging.hpp"

namespace bayesft::core {

namespace {

/// Shared loop body: proposes alpha (via `propose`), installs it, trains
/// theta for E epochs, scores the drift utility, and reports back.
BayesFTResult run_search(
    models::ModelHandle& model, const data::Dataset& train_set,
    const data::Dataset& validation_set, const BayesFTConfig& config,
    Rng& rng, bool use_gp) {
    if (model.dropout_sites.empty()) {
        throw std::invalid_argument(
            "bayesft_search: model has no dropout sites to search over");
    }
    if (config.iterations == 0) {
        throw std::invalid_argument("bayesft_search: zero iterations");
    }
    if (!(config.max_dropout_rate > 0.0) || config.max_dropout_rate >= 1.0) {
        throw std::invalid_argument(
            "bayesft_search: max_dropout_rate must be in (0, 1)");
    }
    const std::size_t dims = model.dropout_sites.size();

    auto bounds =
        bayesopt::BoxBounds::uniform(dims, 0.0, config.max_dropout_rate);
    auto kernel = std::make_shared<bayesopt::ArdSquaredExponential>(
        dims, config.kernel_inverse_scale);
    bayesopt::BayesOpt bo(bounds, kernel,
                          bayesopt::make_acquisition(config.acquisition),
                          config.bo, rng.split());

    nn::TrainConfig epoch_config = config.train;
    epoch_config.epochs = config.epochs_per_iteration;

    if (config.warmup_epochs > 0) {
        // Warm-up at alpha = 0 so theta starts the search trainable.
        model.set_dropout_rates(std::vector<double>(dims, 0.0));
        nn::TrainConfig warmup = config.train;
        warmup.epochs = config.warmup_epochs;
        nn::train_classifier(*model.net, train_set.images, train_set.labels,
                             warmup, rng);
    }

    BayesFTResult result;
    for (std::size_t t = 0; t < config.iterations; ++t) {
        const bayesopt::Point alpha =
            use_gp ? bo.suggest() : bounds.sample(rng);
        model.set_dropout_rates(alpha);

        // Alg. 1 lines 5-7: continue training theta under the candidate
        // dropout configuration.
        nn::train_classifier(*model.net, train_set.images, train_set.labels,
                             epoch_config, rng);

        // Eq. 4: Monte-Carlo drift-marginalized utility on held-out data.
        const double utility =
            drift_utility(*model.net, validation_set.images,
                          validation_set.labels, config.objective, rng);
        bo.observe(alpha, utility);
        log_debug() << "BayesFT iter " << t << " utility " << utility;
    }

    const auto best = bo.best();
    result.best_alpha = best->x;
    result.best_utility = best->y;
    result.trials = bo.trials();

    // Install the winner and fine-tune theta under it.
    model.set_dropout_rates(result.best_alpha);
    if (config.final_epochs > 0) {
        nn::TrainConfig final_config = config.train;
        final_config.epochs = config.final_epochs;
        nn::train_classifier(*model.net, train_set.images, train_set.labels,
                             final_config, rng);
    }
    return result;
}

}  // namespace

BayesFTResult bayesft_search(models::ModelHandle& model,
                             const data::Dataset& train_set,
                             const data::Dataset& validation_set,
                             const BayesFTConfig& config, Rng& rng) {
    return run_search(model, train_set, validation_set, config, rng,
                      /*use_gp=*/true);
}

BayesFTResult random_search(models::ModelHandle& model,
                            const data::Dataset& train_set,
                            const data::Dataset& validation_set,
                            const BayesFTConfig& config, Rng& rng) {
    return run_search(model, train_set, validation_set, config, rng,
                      /*use_gp=*/false);
}

}  // namespace bayesft::core
