#include "core/persist.hpp"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <stdexcept>

#include "core/engine.hpp"
#include "nn/dropout.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define BAYESFT_HAS_FSYNC 1
#endif

namespace bayesft::core {

namespace {

constexpr const char* kMagic = "bayesft-checkpoint";

std::uint64_t double_bits(double value) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof(double));
    return bits;
}

double bits_double(std::uint64_t bits) {
    double value = 0.0;
    std::memcpy(&value, &bits, sizeof(double));
    return value;
}

std::string hex64(std::uint64_t value) {
    char buffer[17];
    std::snprintf(buffer, sizeof(buffer), "%016llx",
                  static_cast<unsigned long long>(value));
    return buffer;
}

[[noreturn]] void fail(const std::string& what, const std::string& path) {
    throw std::runtime_error("checkpoint: " + what + " (" + path + ")");
}

void write_rng(std::ostream& out, const char* key, const RngState& state) {
    out << key;
    for (std::uint64_t lane : state.lanes) out << ' ' << hex64(lane);
    out << ' ' << hex64(state.cached_normal_bits) << ' '
        << (state.has_cached_normal ? 1 : 0) << '\n';
}

void write_points(std::ostream& out, const char* key,
                  const std::vector<std::vector<double>>& rows,
                  const std::vector<double>* values) {
    const std::size_t dims = rows.empty() ? 0 : rows.front().size();
    out << key << ' ' << rows.size() << ' ' << dims << '\n';
    for (std::size_t r = 0; r < rows.size(); ++r) {
        for (std::size_t d = 0; d < rows[r].size(); ++d) {
            out << (d == 0 ? "" : " ") << hex64(double_bits(rows[r][d]));
        }
        if (values != nullptr) {
            out << (rows[r].empty() ? "" : " ")
                << hex64(double_bits((*values)[r]));
        }
        out << '\n';
    }
}

/// Line-oriented reader that tracks the path for error messages and
/// enforces the "key <payload>" shape of every record.
class Reader {
public:
    Reader(std::istream& in, std::string path)
        : in_(in), path_(std::move(path)) {}

    /// Next non-empty line; throws on EOF.
    std::string line() {
        std::string text;
        while (std::getline(in_, text)) {
            if (!text.empty()) return text;
        }
        fail("truncated file", path_);
    }

    /// Next line split on spaces, with the leading token checked.
    std::vector<std::string> record(const char* key) {
        std::istringstream tokens(line());
        std::vector<std::string> out;
        std::string token;
        while (tokens >> token) out.push_back(std::move(token));
        if (out.empty() || out.front() != key) {
            fail(std::string("expected '") + key + "' record", path_);
        }
        return out;
    }

    /// Like record(), but the payload is the raw remainder of the line
    /// (free-form strings such as run_id may contain spaces).
    std::string text_record(const char* key) {
        const std::string text = line();
        const std::string prefix = std::string(key);
        if (text.rfind(prefix, 0) != 0) {
            fail("expected '" + prefix + "' record", path_);
        }
        std::size_t start = prefix.size();
        if (start < text.size() && text[start] == ' ') ++start;
        return text.substr(start);
    }

    std::uint64_t hex(const std::string& token) {
        try {
            std::size_t used = 0;
            const std::uint64_t value = std::stoull(token, &used, 16);
            if (used != token.size()) throw std::invalid_argument(token);
            return value;
        } catch (const std::exception&) {
            fail("malformed hex field '" + token + "'", path_);
        }
    }

    std::uint64_t number(const std::string& token) {
        try {
            std::size_t used = 0;
            const std::uint64_t value = std::stoull(token, &used, 10);
            if (used != token.size()) throw std::invalid_argument(token);
            return value;
        } catch (const std::exception&) {
            fail("malformed numeric field '" + token + "'", path_);
        }
    }

    RngState rng(const char* key) {
        const std::vector<std::string> tokens = record(key);
        if (tokens.size() != 7) fail("malformed RNG record", path_);
        RngState state;
        for (std::size_t i = 0; i < 4; ++i) {
            state.lanes[i] = hex(tokens[1 + i]);
        }
        state.cached_normal_bits = hex(tokens[5]);
        state.has_cached_normal = number(tokens[6]) != 0;
        return state;
    }

    void points(const char* key, std::vector<std::vector<double>>& rows,
                std::vector<double>* values) {
        const std::vector<std::string> header = record(key);
        if (header.size() != 3) fail("malformed point-block header", path_);
        const std::uint64_t count = number(header[1]);
        const std::uint64_t dims = number(header[2]);
        if (count > (1ULL << 24) || dims > (1ULL << 16) ||
            count * dims > (1ULL << 24)) {
            fail("implausible point-block size", path_);
        }
        rows.assign(count, std::vector<double>(dims));
        if (values != nullptr) values->assign(count, 0.0);
        for (std::uint64_t r = 0; r < count; ++r) {
            std::istringstream tokens(line());
            std::string token;
            for (std::uint64_t d = 0; d < dims; ++d) {
                if (!(tokens >> token)) fail("truncated point row", path_);
                rows[r][d] = bits_double(hex(token));
            }
            if (values != nullptr) {
                if (!(tokens >> token)) fail("truncated point row", path_);
                (*values)[r] = bits_double(hex(token));
            }
        }
    }

private:
    std::istream& in_;
    std::string path_;
};

}  // namespace

std::string build_stamp() {
#ifdef BAYESFT_BUILD_STAMP
    return BAYESFT_BUILD_STAMP;
#else
    return "unknown";
#endif
}

void save_checkpoint(const SearchCheckpoint& checkpoint,
                     const std::string& path) {
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp);
        if (!out) fail("cannot open for writing", tmp);
        out << kMagic << ' ' << SearchCheckpoint::kVersion << '\n';
        out << "run_id " << checkpoint.run_id << '\n';
        out << "build " << checkpoint.build << '\n';
        out << "space_digest " << hex64(checkpoint.space_digest) << '\n';
        out << "scenario_digest " << hex64(checkpoint.scenario_digest)
            << '\n';
        out << "context_key " << hex64(checkpoint.context_key) << '\n';
        out << "context_stamp " << checkpoint.context_stamp << '\n';
        out << "trials_done " << checkpoint.trials_done << '\n';
        write_rng(out, "run_rng", checkpoint.run_rng);
        write_rng(out, "bo_rng", checkpoint.bo.rng);
        out << "initial_used " << checkpoint.bo.initial_used << '\n';
        out << "trust_region "
            << hex64(double_bits(checkpoint.bo.trust_region.length)) << ' '
            << checkpoint.bo.trust_region.successes << ' '
            << checkpoint.bo.trust_region.failures << ' '
            << checkpoint.bo.trust_region.restarts << '\n';
        write_points(out, "initial_plan", checkpoint.bo.initial_plan,
                     nullptr);
        {
            std::vector<std::vector<double>> xs;
            std::vector<double> ys;
            xs.reserve(checkpoint.bo.trials.size());
            ys.reserve(checkpoint.bo.trials.size());
            for (const bayesopt::Trial& t : checkpoint.bo.trials) {
                xs.push_back(t.x);
                ys.push_back(t.y);
            }
            write_points(out, "trials", xs, &ys);
        }
        out << "trial_status " << checkpoint.bo.trials.size();
        for (const bayesopt::Trial& t : checkpoint.bo.trials) {
            out << ' ' << static_cast<unsigned>(t.status);
        }
        out << '\n';
        {
            std::vector<std::vector<double>> xs;
            std::vector<double> ys;
            xs.reserve(checkpoint.cache.size());
            ys.reserve(checkpoint.cache.size());
            for (const auto& [point, utility] : checkpoint.cache) {
                xs.push_back(point);
                ys.push_back(utility);
            }
            write_points(out, "cache", xs, &ys);
        }
        out << "model " << checkpoint.model_bits.size() << ' '
            << hex64(checkpoint.model_digest) << '\n';
        for (std::size_t i = 0; i < checkpoint.model_bits.size(); ++i) {
            char buffer[9];
            std::snprintf(buffer, sizeof(buffer), "%08x",
                          checkpoint.model_bits[i]);
            out << buffer << ((i % 16 == 15) ? '\n' : ' ');
        }
        if (checkpoint.model_bits.size() % 16 != 0) out << '\n';
        out << "model_rngs " << checkpoint.model_rngs.size() << '\n';
        for (const RngState& state : checkpoint.model_rngs) {
            write_rng(out, "mrng", state);
        }
        out << "end\n";
        // Flush before checking: without it a failed final flush (disk
        // full) would pass the check, and the rename below would install
        // a truncated file over the previous good checkpoint.
        out.flush();
        if (!out) fail("write failed", tmp);
    }
    // fsync before the rename: without it a power loss shortly after the
    // rename can install a zero-length tmp over the previous good
    // checkpoint (rename is atomic against crashes of this process, but
    // not against losing the unflushed tmp data).
    fsync_file(tmp);
    std::error_code error;
    std::filesystem::rename(tmp, path, error);
    if (error) fail("rename failed: " + error.message(), path);
    fsync_parent_dir(path);
}

SearchCheckpoint load_checkpoint(const std::string& path) {
    std::ifstream in(path);
    if (!in) fail("cannot open", path);
    Reader reader(in, path);

    const std::vector<std::string> header = reader.record(kMagic);
    if (header.size() != 2) fail("malformed header", path);
    const std::uint64_t version = reader.number(header[1]);
    if (version < SearchCheckpoint::kOldestReadableVersion ||
        version > SearchCheckpoint::kVersion) {
        fail("unsupported format version " + header[1] + " (this build reads "
                 + std::to_string(SearchCheckpoint::kOldestReadableVersion) +
                 ".." + std::to_string(SearchCheckpoint::kVersion) + ")",
             path);
    }

    SearchCheckpoint checkpoint;
    checkpoint.run_id = reader.text_record("run_id");
    checkpoint.build = reader.text_record("build");
    checkpoint.space_digest = reader.hex(reader.record("space_digest").at(1));
    checkpoint.scenario_digest =
        reader.hex(reader.record("scenario_digest").at(1));
    checkpoint.context_key = reader.hex(reader.record("context_key").at(1));
    checkpoint.context_stamp =
        reader.number(reader.record("context_stamp").at(1));
    checkpoint.trials_done =
        reader.number(reader.record("trials_done").at(1));
    checkpoint.run_rng = reader.rng("run_rng");
    checkpoint.bo.rng = reader.rng("bo_rng");
    checkpoint.bo.initial_used =
        reader.number(reader.record("initial_used").at(1));
    if (version >= 3) {
        const std::vector<std::string> tr = reader.record("trust_region");
        if (tr.size() != 5) fail("malformed trust_region record", path);
        checkpoint.bo.trust_region.length = bits_double(reader.hex(tr[1]));
        checkpoint.bo.trust_region.successes = reader.number(tr[2]);
        checkpoint.bo.trust_region.failures = reader.number(tr[3]);
        checkpoint.bo.trust_region.restarts = reader.number(tr[4]);
    }
    // v2: no record — bo.trust_region keeps its default (length 0), which
    // BayesOpt::import_state treats as "use the configured initial edge".

    reader.points("initial_plan", checkpoint.bo.initial_plan, nullptr);
    {
        std::vector<std::vector<double>> xs;
        std::vector<double> ys;
        reader.points("trials", xs, &ys);
        checkpoint.bo.trials.reserve(xs.size());
        for (std::size_t i = 0; i < xs.size(); ++i) {
            checkpoint.bo.trials.push_back(
                bayesopt::Trial{std::move(xs[i]), ys[i]});
        }
    }
    {
        const std::vector<std::string> header =
            reader.record("trial_status");
        if (header.size() < 2 ||
            reader.number(header[1]) != checkpoint.bo.trials.size() ||
            header.size() != 2 + checkpoint.bo.trials.size()) {
            fail("trial_status count disagrees with trials", path);
        }
        for (std::size_t i = 0; i < checkpoint.bo.trials.size(); ++i) {
            const std::uint64_t code = reader.number(header[2 + i]);
            if (code > static_cast<std::uint64_t>(
                           TrialStatus::kFailedTimeout)) {
                fail("unknown trial status code " + header[2 + i], path);
            }
            checkpoint.bo.trials[i].status =
                static_cast<TrialStatus>(code);
        }
    }
    {
        std::vector<std::vector<double>> xs;
        std::vector<double> ys;
        reader.points("cache", xs, &ys);
        checkpoint.cache.reserve(xs.size());
        for (std::size_t i = 0; i < xs.size(); ++i) {
            checkpoint.cache.emplace_back(std::move(xs[i]), ys[i]);
        }
    }
    {
        const std::vector<std::string> model = reader.record("model");
        if (model.size() != 3) fail("malformed model header", path);
        const std::uint64_t count = reader.number(model[1]);
        if (count > (1ULL << 26)) fail("implausible model size", path);
        checkpoint.model_digest = reader.hex(model[2]);
        checkpoint.model_bits.reserve(count);
        while (checkpoint.model_bits.size() < count) {
            std::istringstream tokens(reader.line());
            std::string token;
            while (tokens >> token &&
                   checkpoint.model_bits.size() < count) {
                // Exactly the 8 hex digits the writer emits: a longer
                // token (e.g. two words fused by a lost separator) must
                // reject the file, not load truncated weights.
                if (token.size() != 8) {
                    fail("malformed model word '" + token + "'", path);
                }
                checkpoint.model_bits.push_back(
                    static_cast<std::uint32_t>(reader.hex(token)));
            }
        }
    }
    {
        const std::vector<std::string> header = reader.record("model_rngs");
        if (header.size() != 2) fail("malformed model_rngs header", path);
        const std::uint64_t count = reader.number(header[1]);
        if (count > (1ULL << 20)) fail("implausible model_rngs size", path);
        checkpoint.model_rngs.reserve(count);
        for (std::uint64_t i = 0; i < count; ++i) {
            checkpoint.model_rngs.push_back(reader.rng("mrng"));
        }
    }
    if (reader.line() != "end") fail("missing end marker", path);
    if (checkpoint.trials_done != checkpoint.bo.trials.size()) {
        fail("trial count disagrees with trials_done", path);
    }
    return checkpoint;
}

bool checkpoint_exists(const std::string& path) {
    std::error_code error;
    return std::filesystem::is_regular_file(path, error);
}

void fsync_file(const std::string& path) {
#ifdef BAYESFT_HAS_FSYNC
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) fail("cannot open for fsync", path);
    const int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0) fail("fsync failed", path);
#else
    (void)path;
#endif
}

void fsync_parent_dir(const std::string& path) {
#ifdef BAYESFT_HAS_FSYNC
    std::string dir =
        std::filesystem::path(path).parent_path().string();
    if (dir.empty()) dir = ".";
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) return;  // best-effort (see header)
    ::fsync(fd);
    ::close(fd);
#else
    (void)path;
#endif
}

std::uint64_t mix_train_config(std::uint64_t key,
                               const nn::TrainConfig& train) {
    key = mix_key(key, static_cast<std::uint64_t>(train.epochs));
    key = mix_key(key, static_cast<std::uint64_t>(train.batch_size));
    const double reals[] = {train.learning_rate, train.momentum,
                            train.weight_decay, train.lr_decay};
    key = mix_key(key, reals, 4);
    return mix_key(key, static_cast<std::uint64_t>(train.use_adam ? 1 : 0));
}

std::uint64_t mix_bo_config(std::uint64_t key,
                            const bayesopt::BayesOptConfig& config) {
    key = mix_key(key,
                  static_cast<std::uint64_t>(config.initial_random_trials));
    key = mix_key(key, static_cast<std::uint64_t>(
                           config.latin_hypercube_init ? 1 : 0));
    key = mix_key(key, static_cast<std::uint64_t>(config.candidates));
    key = mix_key(key, static_cast<std::uint64_t>(config.local_candidates));
    const double reals[] = {config.local_sigma_fraction,
                            config.noise_variance,
                            config.duplicate_tolerance,
                            config.batch_separation_fraction};
    key = mix_key(key, reals, 4);
    // The fail policy shapes what the GP sees, hence the proposal stream —
    // unlike the resilience knobs (isolate/timeout/retries), which are
    // result-invariant and deliberately NOT digested (like thread count).
    key = mix_key(key, static_cast<std::uint64_t>(config.fail_policy));
    key = mix_key(key, &config.fail_penalty, 1);
    // Trust-region knobs are folded ONLY when the feature is on, so every
    // pre-existing (trust-region-off) scenario digest — and with it every
    // v2 checkpoint in the wild — stays valid under this build.
    if (config.trust_region.enabled) {
        const bayesopt::TrustRegionConfig& tr = config.trust_region;
        key = mix_key(key, std::string_view("trust-region"));
        key = mix_key(key, static_cast<std::uint64_t>(tr.activate_after));
        const double tr_reals[] = {tr.initial_length, tr.min_length,
                                   tr.max_length};
        key = mix_key(key, tr_reals, 3);
        key = mix_key(key, static_cast<std::uint64_t>(tr.success_tolerance));
        key = mix_key(key, static_cast<std::uint64_t>(tr.failure_tolerance));
        key = mix_key(key,
                      static_cast<std::uint64_t>(tr.max_local_trials));
    }
    return key;
}

std::uint64_t mix_rng_state(std::uint64_t key, const RngState& state) {
    for (std::uint64_t lane : state.lanes) key = mix_key(key, lane);
    key = mix_key(key, state.cached_normal_bits);
    return mix_key(key,
                   static_cast<std::uint64_t>(state.has_cached_normal));
}

void validate_checkpoint(const SearchCheckpoint& checkpoint,
                         std::uint64_t space_digest,
                         std::uint64_t scenario_digest,
                         const std::string& path) {
    if (checkpoint.space_digest != space_digest) {
        fail("search-space digest mismatch — the checkpoint was written for "
             "a different ParamSpace; delete it (or point --checkpoint "
             "elsewhere) to start fresh",
             path);
    }
    if (checkpoint.scenario_digest != scenario_digest) {
        fail("scenario digest mismatch — the checkpoint was written under a "
             "different objective/loop configuration (fault set, MC "
             "samples, iterations, batch, seed, ...); delete it to start "
             "fresh",
             path);
    }
}

namespace {

/// Deterministic pre-order walk over the module tree (collect_children is
/// the generic traversal every container supports).
void visit_modules(nn::Module& node,
                   const std::function<void(nn::Module&)>& fn) {
    fn(node);
    std::vector<nn::Module*> children;
    node.collect_children(children);
    for (nn::Module* child : children) visit_modules(*child, fn);
}

/// Get/set access to one layer's internal mask generator.
struct MaskRngSite {
    std::function<RngState()> get;
    std::function<void(const RngState&)> set;
};

/// THE single registry of RNG-bearing layer types: snapshot, restore, and
/// the structure digest all go through this collector, so a new
/// mask-drawing module type added here is automatically covered by all
/// three (miss it here and the torture tests' bitwise weight comparison
/// fails; there is no second place to forget).
std::vector<MaskRngSite> collect_mask_rng_sites(nn::Module& root) {
    std::vector<MaskRngSite> sites;
    visit_modules(root, [&](nn::Module& node) {
        if (auto* dropout = dynamic_cast<nn::Dropout*>(&node)) {
            sites.push_back(
                {[dropout] { return dropout->mask_rng_state(); },
                 [dropout](const RngState& state) {
                     dropout->set_mask_rng_state(state);
                 }});
        } else if (auto* alpha = dynamic_cast<nn::AlphaDropout*>(&node)) {
            sites.push_back(
                {[alpha] { return alpha->mask_rng_state(); },
                 [alpha](const RngState& state) {
                     alpha->set_mask_rng_state(state);
                 }});
        }
    });
    return sites;
}

}  // namespace

std::vector<std::uint32_t> snapshot_model(nn::Module& model) {
    std::vector<std::uint32_t> bits;
    for (const nn::Parameter* p : model.parameters()) {
        const float* data = p->value.data();
        for (std::size_t i = 0; i < p->value.size(); ++i) {
            std::uint32_t b = 0;
            std::memcpy(&b, &data[i], sizeof(float));
            bits.push_back(b);
        }
    }
    for (const Tensor* buffer : model.buffers()) {
        const float* data = buffer->data();
        for (std::size_t i = 0; i < buffer->size(); ++i) {
            std::uint32_t b = 0;
            std::memcpy(&b, &data[i], sizeof(float));
            bits.push_back(b);
        }
    }
    return bits;
}

std::vector<RngState> snapshot_model_rngs(nn::Module& model) {
    std::vector<RngState> states;
    for (const MaskRngSite& site : collect_mask_rng_sites(model)) {
        states.push_back(site.get());
    }
    return states;
}

void restore_model_rngs(nn::Module& model,
                        const std::vector<RngState>& states) {
    const std::vector<MaskRngSite> sites = collect_mask_rng_sites(model);
    if (sites.size() != states.size()) {
        throw std::runtime_error(
            "checkpoint: dropout RNG state count mismatch (" +
            std::to_string(states.size()) + " stored, " +
            std::to_string(sites.size()) + " layers)");
    }
    for (std::size_t i = 0; i < sites.size(); ++i) {
        sites[i].set(states[i]);
    }
}

std::uint64_t model_structure_digest(nn::Module& model) {
    std::uint64_t digest = mix_key(0, std::string_view("model-structure"));
    for (const nn::Parameter* p : model.parameters()) {
        digest = mix_key(digest, std::string_view(p->name));
        digest = mix_key(digest,
                         static_cast<std::uint64_t>(p->value.rank()));
        for (std::size_t d = 0; d < p->value.rank(); ++d) {
            digest = mix_key(digest,
                             static_cast<std::uint64_t>(p->value.dim(d)));
        }
    }
    for (const Tensor* buffer : model.buffers()) {
        digest = mix_key(digest, static_cast<std::uint64_t>(buffer->rank()));
        for (std::size_t d = 0; d < buffer->rank(); ++d) {
            digest = mix_key(digest,
                             static_cast<std::uint64_t>(buffer->dim(d)));
        }
    }
    return mix_key(digest, static_cast<std::uint64_t>(
                               collect_mask_rng_sites(model).size()));
}

void restore_model(nn::Module& model,
                   const std::vector<std::uint32_t>& bits) {
    std::size_t cursor = 0;
    auto copy_into = [&](float* data, std::size_t count) {
        if (cursor + count > bits.size()) {
            throw std::runtime_error(
                "checkpoint: model payload shorter than the live model");
        }
        for (std::size_t i = 0; i < count; ++i) {
            std::memcpy(&data[i], &bits[cursor + i], sizeof(float));
        }
        cursor += count;
    };
    for (nn::Parameter* p : model.parameters()) {
        copy_into(p->value.data(), p->value.size());
    }
    for (Tensor* buffer : model.buffers()) {
        copy_into(buffer->data(), buffer->size());
    }
    if (cursor != bits.size()) {
        throw std::runtime_error(
            "checkpoint: model payload longer than the live model");
    }
}

}  // namespace bayesft::core
