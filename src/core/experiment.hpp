#pragma once
// High-level experiment harness: trains every method on one task and sweeps
// the drift level sigma, producing exactly the curves of the paper's
// Fig. 3.  All fig3_* benches are thin wrappers over this.

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/baselines.hpp"
#include "core/bayesft.hpp"
#include "data/dataset.hpp"
#include "models/zoo.hpp"
#include "utils/table.hpp"

namespace bayesft::core {

/// Builds a fresh model with `output_units` outputs (classes for standard
/// methods, code bits for FTNA).
using ModelFactory =
    std::function<models::ModelHandle(std::size_t output_units, Rng& rng)>;

/// Which methods to run (FTNA/ReRAM-V/AWP can be disabled per figure, e.g.
/// Fig. 3(i) has no FTNA because error-correction coding does not transfer).
struct MethodSet {
    bool erm = true;
    bool ftna = true;
    bool reram_v = true;
    bool awp = true;
    bool bayesft = true;
};

/// Full experiment configuration.
struct ExperimentConfig {
    /// Drift sweep of the x-axis (paper: 0 to 1.5 step 0.3).
    std::vector<double> sigmas{0.0, 0.3, 0.6, 0.9, 1.2, 1.5};
    /// Monte-Carlo samples per sigma point at evaluation time.
    std::size_t eval_samples = 5;
    /// Baseline training settings.
    nn::TrainConfig train;
    /// BayesFT search settings.
    BayesFTConfig bayesft;
    /// ReRAM-V / AWP / FTNA settings.
    ReRamVConfig reram_v;
    AwpConfig awp;
    std::size_t ftna_code_bits = 16;
    MethodSet methods;
    std::uint64_t seed = 42;
};

/// One method's accuracy-vs-sigma curve.
struct MethodCurve {
    std::string method;
    std::vector<double> accuracy;  ///< aligned with ExperimentConfig::sigmas
};

/// Result of a full experiment.
struct ExperimentResult {
    std::vector<double> sigmas;
    std::vector<MethodCurve> curves;
    std::vector<double> bayesft_alpha;  ///< best found dropout rates
    /// Full BO trial history of the BayesFT search (for the run store),
    /// with the decoded point strings aligned to it.
    std::vector<bayesopt::Trial> bayesft_trials;
    std::vector<std::string> bayesft_trial_points;
    /// False when the BayesFT search checkpointed out at stop_after; the
    /// BayesFT sweep curve is then absent.
    bool bayesft_completed = true;
    /// Leading trials the search restored from a checkpoint.
    std::size_t bayesft_resumed = 0;

    /// Renders a Fig. 3-style table (rows = sigma, columns = methods,
    /// cells = accuracy %).
    ResultTable to_table(const std::string& title) const;
};

/// Runs every enabled method on the task defined by (factory, data).
ExperimentResult run_classification_experiment(const ModelFactory& factory,
                                               const data::Dataset& train_set,
                                               const data::Dataset& test_set,
                                               std::size_t num_classes,
                                               const ExperimentConfig& config);

}  // namespace bayesft::core
