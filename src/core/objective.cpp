#include "core/objective.hpp"

#include <stdexcept>

#include "core/engine.hpp"
#include "fault/drift.hpp"
#include "nn/trainer.hpp"

namespace bayesft::core {

double fault_utility(nn::Module& model, const Tensor& images,
                     const std::vector<int>& labels,
                     const ObjectiveConfig& config, Rng& rng) {
    if ((config.sigmas.empty() && config.faults.empty()) ||
        config.mc_samples == 0) {
        throw std::invalid_argument("fault_utility: empty configuration");
    }
    // Fixed-point deployment view: switch the capable layers for the
    // duration of the scoring; the per-thread replicas the evaluator
    // clones inherit the mode.  No-op for kFloat32.
    const nn::ScopedInferenceMode scoped_mode(model, config.inference);
    // The metric scores the module it is handed, so the Monte-Carlo loop
    // can fan out over per-thread replicas (num_threads 0 = pool width).
    const auto score = [&](const fault::FaultModel& fault) {
        return fault::evaluate_metric_under_faults(
                   model, fault, config.mc_samples, rng,
                   [&](nn::Module& m) {
                       switch (config.metric) {
                           case ObjectiveMetric::kAccuracy:
                               return nn::evaluate_accuracy(m, images,
                                                            labels);
                           case ObjectiveMetric::kNegLoss:
                               return -nn::evaluate_loss(m, images, labels);
                       }
                       throw std::logic_error("fault_utility: bad metric");
                   },
                   0)
            .mean_accuracy;
    };

    double total = 0.0;
    std::size_t scenarios = 0;
    if (!config.faults.empty()) {
        for (const auto& fault : config.faults) {
            if (!fault) {
                throw std::invalid_argument(
                    "fault_utility: null fault scenario");
            }
            total += score(*fault);
            ++scenarios;
        }
    } else {
        for (double sigma : config.sigmas) {
            total += score(fault::LogNormalDrift(sigma));
            ++scenarios;
        }
    }
    return total / static_cast<double>(scenarios);
}

std::uint64_t objective_digest(const ObjectiveConfig& config) {
    std::uint64_t key =
        mix_key(0, static_cast<std::uint64_t>(config.mc_samples));
    key = mix_key(key, static_cast<std::uint64_t>(config.metric));
    // The fixed-point mode changes every scored forward, so it must key
    // the engine's memoization and RNG-derivation context.  Folded only
    // when non-default so every float32 configuration keeps the digest it
    // had before the mode existed (checkpoint / RNG-stream compatibility).
    if (config.inference != nn::InferenceMode::kFloat32) {
        key = mix_key(key, static_cast<std::uint64_t>(config.inference));
    }
    if (config.faults.empty()) {
        key = mix_key(key, config.sigmas.data(), config.sigmas.size());
    } else {
        for (const auto& fault : config.faults) {
            if (!fault) {
                throw std::invalid_argument(
                    "objective_digest: null fault scenario");
            }
            key = mix_key(key, fault->describe());
            const std::vector<double> params = fault->params();
            key = mix_key(key, params.data(), params.size());
        }
    }
    return key;
}

}  // namespace bayesft::core
