#include "core/objective.hpp"

#include <stdexcept>

#include "nn/trainer.hpp"

namespace bayesft::core {

double drift_utility(nn::Module& model, const Tensor& images,
                     const std::vector<int>& labels,
                     const ObjectiveConfig& config, Rng& rng) {
    if (config.sigmas.empty() || config.mc_samples == 0) {
        throw std::invalid_argument("drift_utility: empty configuration");
    }
    double total = 0.0;
    for (double sigma : config.sigmas) {
        const fault::LogNormalDrift drift(sigma);
        // The metric scores the module it is handed, so the Monte-Carlo loop
        // can fan out over per-thread replicas (num_threads 0 = pool width).
        const auto report = fault::evaluate_metric_under_drift(
            model, drift, config.mc_samples, rng,
            [&](nn::Module& m) {
                switch (config.metric) {
                    case ObjectiveMetric::kAccuracy:
                        return nn::evaluate_accuracy(m, images, labels);
                    case ObjectiveMetric::kNegLoss:
                        return -nn::evaluate_loss(m, images, labels);
                }
                throw std::logic_error("drift_utility: bad metric");
            },
            0);
        total += report.mean_accuracy;
    }
    return total / static_cast<double>(config.sigmas.size());
}

}  // namespace bayesft::core
