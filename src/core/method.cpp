#include "core/method.hpp"

#include "utils/logging.hpp"

namespace bayesft::core {

namespace {

/// Standard-accuracy metric over the handed module (replica-safe).
std::function<double(nn::Module&)> accuracy_metric(
    const data::Dataset& test_set) {
    return [&test_set](nn::Module& m) {
        return nn::evaluate_accuracy(m, test_set.images, test_set.labels);
    };
}

class ErmMethod : public Method {
public:
    std::string name() const override { return "ERM"; }
    std::uint64_t seed_offset() const override { return 1; }
    TrainedMethod train(const ModelFactory& factory,
                        const data::Dataset& train_set,
                        const data::Dataset& test_set,
                        std::size_t num_classes,
                        const ExperimentConfig& config,
                        Rng& rng) const override {
        auto model = std::make_shared<models::ModelHandle>(
            factory(num_classes, rng));
        log_info() << "[experiment] training ERM / " << model->name;
        train_erm(*model, train_set, config.train, rng);
        TrainedMethod trained;
        trained.net = model->net.get();
        trained.holder = std::move(model);
        trained.metric = accuracy_metric(test_set);
        return trained;
    }
};

class FtnaMethod : public Method {
public:
    std::string name() const override { return "FTNA"; }
    std::uint64_t seed_offset() const override { return 2; }
    TrainedMethod train(const ModelFactory& factory,
                        const data::Dataset& train_set,
                        const data::Dataset& test_set,
                        std::size_t num_classes,
                        const ExperimentConfig& config,
                        Rng& rng) const override {
        models::ModelHandle model = factory(config.ftna_code_bits, rng);
        log_info() << "[experiment] training FTNA / " << model.name;
        auto ftna = std::make_shared<FtnaClassifier>(
            std::move(model), num_classes, config.ftna_code_bits, rng);
        ftna->train(train_set, config.train, rng);
        TrainedMethod trained;
        trained.net = &ftna->network();
        trained.metric = [ftna, &test_set](nn::Module&) {
            return ftna->evaluate_accuracy(test_set.images, test_set.labels);
        };
        trained.holder = std::move(ftna);
        // The FTNA metric decodes through the wrapper's own network, not
        // the module it is handed, so the sweep must stay serial.
        trained.sweep_threads = 1;
        return trained;
    }
};

class ReRamVMethod : public Method {
public:
    std::string name() const override { return "ReRAM-V"; }
    std::uint64_t seed_offset() const override { return 3; }
    TrainedMethod train(const ModelFactory& factory,
                        const data::Dataset& train_set,
                        const data::Dataset& test_set,
                        std::size_t num_classes,
                        const ExperimentConfig& config,
                        Rng& rng) const override {
        auto model = std::make_shared<models::ModelHandle>(
            factory(num_classes, rng));
        log_info() << "[experiment] training ReRAM-V / " << model->name;
        ReRamVConfig reram = config.reram_v;
        reram.pretrain = config.train;
        train_reram_v(*model, train_set, reram, rng);
        TrainedMethod trained;
        trained.net = model->net.get();
        trained.holder = std::move(model);
        trained.metric = accuracy_metric(test_set);
        return trained;
    }
};

class AwpMethod : public Method {
public:
    std::string name() const override { return "AWP"; }
    std::uint64_t seed_offset() const override { return 4; }
    TrainedMethod train(const ModelFactory& factory,
                        const data::Dataset& train_set,
                        const data::Dataset& test_set,
                        std::size_t num_classes,
                        const ExperimentConfig& config,
                        Rng& rng) const override {
        auto model = std::make_shared<models::ModelHandle>(
            factory(num_classes, rng));
        log_info() << "[experiment] training AWP / " << model->name;
        AwpConfig awp = config.awp;
        awp.train = config.train;
        train_awp(*model, train_set, awp, rng);
        TrainedMethod trained;
        trained.net = model->net.get();
        trained.holder = std::move(model);
        trained.metric = accuracy_metric(test_set);
        return trained;
    }
};

class BayesFTMethod : public Method {
public:
    std::string name() const override { return "BayesFT"; }
    std::uint64_t seed_offset() const override { return 5; }
    TrainedMethod train(const ModelFactory& factory,
                        const data::Dataset& train_set,
                        const data::Dataset& test_set,
                        std::size_t num_classes,
                        const ExperimentConfig& config,
                        Rng& rng) const override {
        auto model = std::make_shared<models::ModelHandle>(
            factory(num_classes, rng));
        log_info() << "[experiment] running BayesFT search / " << model->name;
        // Hold out part of the training set for the search's utility.
        Rng split_rng(config.seed + 6);
        const data::TrainTestSplit inner =
            data::split(train_set, 0.25, split_rng);
        const BayesFTResult search = bayesft_search(
            *model, inner.train, inner.test, config.bayesft, rng);
        TrainedMethod trained;
        trained.net = model->net.get();
        trained.holder = std::move(model);
        trained.metric = accuracy_metric(test_set);
        trained.best_alpha = search.best_alpha;
        trained.trials = search.trials;
        trained.trial_points = search.trial_points;
        trained.search_completed = search.completed;
        trained.resumed_trials = search.resumed_trials;
        return trained;
    }
};

}  // namespace

std::vector<std::unique_ptr<Method>> make_methods(const MethodSet& set) {
    std::vector<std::unique_ptr<Method>> methods;
    if (set.erm) methods.push_back(std::make_unique<ErmMethod>());
    if (set.ftna) methods.push_back(std::make_unique<FtnaMethod>());
    if (set.reram_v) methods.push_back(std::make_unique<ReRamVMethod>());
    if (set.awp) methods.push_back(std::make_unique<AwpMethod>());
    if (set.bayesft) methods.push_back(std::make_unique<BayesFTMethod>());
    return methods;
}

}  // namespace bayesft::core
