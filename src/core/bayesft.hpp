#pragma once
// BayesFT (paper Algorithm 1): alternating optimization of network weights
// theta (SGD) and per-layer dropout rates alpha (Bayesian optimization with
// a GP surrogate over the fault-marginalized utility).  The utility
// marginalizes over the paper's log-normal drift by default; setting
// ObjectiveConfig::faults searches for robustness against any FaultModel
// set (stuck-at, bit flips, variation, quantization, compositions).
//
// The search space is the all-continuous ParamSpace::dropout instance of
// the typed mixed search space (docs/search-space.md) — bit-identical to
// the historical raw-vector path.  For searching architecture dimensions
// (norm, activation, depth, widths) jointly with dropout, see
// core/archsearch.hpp.

#include <cstdint>
#include <string>
#include <vector>

#include "bayesopt/bayesopt.hpp"
#include "core/objective.hpp"
#include "core/persist.hpp"
#include "data/dataset.hpp"
#include "models/zoo.hpp"
#include "nn/trainer.hpp"

namespace bayesft::core {

/// Configuration of the full search.
struct BayesFTConfig {
    /// Outer iterations t (each = E training epochs + one BO update).
    std::size_t iterations = 8;
    /// E: epochs of SGD on theta per outer iteration (Alg. 1 lines 5-7).
    std::size_t epochs_per_iteration = 1;
    /// Inner SGD settings for theta.
    nn::TrainConfig train;
    /// Monte-Carlo utility settings (Eq. 4).
    ObjectiveConfig objective;
    /// Acquisition rule: "posterior_mean" (paper), "ei" or "ucb".
    std::string acquisition = "posterior_mean";
    /// Kernel inverse length scales k_i of Eq. 9 (isotropic).
    double kernel_inverse_scale = 4.0;
    /// GP/BO proposal settings.
    bayesopt::BayesOptConfig bo;
    /// Upper bound for the per-layer dropout rate (strictly < 1).
    double max_dropout_rate = 0.6;
    /// Epochs trained with all-zero dropout before the search starts, so
    /// fragile architectures (deep convnets, spatial transformers) reach a
    /// trainable region before aggressive candidate rates are applied.
    std::size_t warmup_epochs = 2;
    /// Extra fine-tuning epochs after the best alpha is installed.
    std::size_t final_epochs = 3;
    /// Candidates proposed and evaluated per GP refit (q).  1 reproduces
    /// the historical strictly serial loop bit-for-bit; larger values
    /// evaluate q candidates concurrently on per-candidate model replicas
    /// (EvaluationEngine) and adopt the best one as the new weights.
    std::size_t batch = 1;
    /// Concurrency of the candidate-evaluation engine (0 = pool width).
    /// Batched results are bit-identical for every value.
    std::size_t eval_threads = 0;
    /// Fault-tolerant trial execution (docs/robustness.md): per-trial
    /// timeout, bounded retries, quarantine.  Like eval_threads, none of
    /// these knobs changes a successful run's results — they are excluded
    /// from the scenario digest.  The evolving-theta loop has no crash
    /// isolation (weights cannot cross the child pipe): `isolate` only
    /// applies to self-contained searches (arch_search).
    ResilienceConfig resilience;
    /// Checkpoint/resume controls (docs/checkpointing.md).  When enabled,
    /// a snapshot of the BO state, the loop RNG, and the model weights is
    /// written after every observed candidate group, and a run that finds
    /// a valid checkpoint at the path resumes it; a resumed run's final
    /// results are bit-identical to an uninterrupted run's.
    CheckpointOptions checkpoint;
};

/// Outcome of a search.
struct BayesFTResult {
    std::vector<double> best_alpha;
    double best_utility = 0.0;
    std::vector<bayesopt::Trial> trials;  ///< full BO history
    /// Human-readable decoded points aligned with `trials`
    /// (ParamSpace::describe of the dropout space) — the strings the run
    /// store persists, so every store consumer formats points one way.
    std::vector<std::string> trial_points;
    /// Candidate evaluations skipped by the engine because the batch
    /// contained duplicate proposals (the search trains between batches,
    /// so cross-batch cache reuse never applies here).
    std::size_t engine_cache_hits = 0;
    /// False when the run halted at CheckpointOptions::stop_after before
    /// exhausting the trial budget (the winner has NOT been installed or
    /// fine-tuned; resume by re-running with the same checkpoint path).
    bool completed = true;
    /// Trials restored from a checkpoint rather than evaluated by this
    /// invocation (a prior run already logged/persisted them).
    std::size_t resumed_trials = 0;
};

/// Runs Algorithm 1 on `model` in place: on return the model holds the
/// trained weights with the best-found dropout rates installed.
///
/// `train_set` drives the SGD steps; `validation_set` scores the
/// drift-marginalized utility (held out from training, so the search does
/// not overfit alpha to training noise).
BayesFTResult bayesft_search(models::ModelHandle& model,
                             const data::Dataset& train_set,
                             const data::Dataset& validation_set,
                             const BayesFTConfig& config, Rng& rng);

/// Random-search ablation: identical protocol but alpha_t is sampled
/// uniformly instead of by the GP acquisition (for ablation benches).
BayesFTResult random_search(models::ModelHandle& model,
                            const data::Dataset& train_set,
                            const data::Dataset& validation_set,
                            const BayesFTConfig& config, Rng& rng);

}  // namespace bayesft::core
