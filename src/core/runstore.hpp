#pragma once
// The append-only JSONL run store (docs/checkpointing.md, "Run store").
// Every `experiments` invocation appends one record per observed search
// trial — scenario id, seed, decoded point, objective, build stamp — plus
// one summary record per completed run (best point, wall clock) to
// `<root>/<scenario>.jsonl`.  Unlike the `--json` flat export (one file
// per invocation, overwritten), the store accumulates across invocations
// and machines: resumed runs append only their newly observed trials, so
// an interrupted-then-resumed run's trial log concatenates to exactly the
// uninterrupted run's, and the `report` generator can aggregate
// best/mean/stddev/trials-to-target across seeds from the files alone.
//
// The per-trial records deliberately carry no wall-clock field: every
// field is a deterministic function of (scenario, seed, config), which is
// what makes the bit-identical-resume contract checkable with a plain
// line diff.  Timing lives in the summary records.

#include <cstdint>
#include <string>
#include <vector>

namespace bayesft::core {

/// One parsed run-store line.  `kind` selects which fields are meaningful:
/// "trial" records fill {trial, point, objective}; "summary" records fill
/// {trials, best_trial, best_point, best_objective, seconds, annotation}.
struct RunRecord {
    std::string kind;
    std::string scenario;
    std::string family;
    std::uint64_t seed = 0;
    std::string build;
    std::uint64_t batch = 1;
    /// Provenance only, serialized on summary records alone: trial
    /// records must stay byte-identical when a checkpoint written at one
    /// thread count is resumed at another.
    std::uint64_t threads = 0;
    /// Distributed worker count (docs/distributed.md).  Provenance only,
    /// serialized on summary records alone for the same reason as
    /// `threads`: trial logs must byte-diff clean across worker counts.
    std::uint64_t workers = 0;
    bool quick = false;
    // --- trial fields ---
    std::uint64_t trial = 0;   ///< global trial index within the search
    std::string point;         ///< decoded, human-readable
    double objective = 0.0;
    /// Trial outcome class ("ok", "failed_nan", "failed_crash",
    /// "failed_timeout"; see core/trial.hpp).  Serialized on trial
    /// records; absent in pre-robustness store files, which parse as "ok".
    std::string status = "ok";
    // --- summary fields ---
    std::uint64_t trials = 0;  ///< total observed trials (0 = no search)
    std::uint64_t best_trial = 0;
    std::string best_point;
    double best_objective = 0.0;
    double seconds = 0.0;
    std::string annotation;
};

/// Append/load access to one run-store directory.
class RunStore {
public:
    /// Uses (and lazily creates) `root` as the store directory.
    explicit RunStore(std::string root);

    const std::string& root() const { return root_; }

    /// Validates that the store can be written — creates the root
    /// directory and probes a file in it — so callers can fail fast
    /// before a long computation instead of losing its records at append
    /// time.  Throws std::runtime_error with a clear message.
    void probe() const;

    /// Appends `records` to `<root>/<scenario>.jsonl` (creating the
    /// directory and file as needed).  Throws std::runtime_error with a
    /// clear message when the directory or file cannot be written.
    void append(const std::string& scenario,
                const std::vector<RunRecord>& records);

    /// Parses one record line (the unit parse_file applies per line, and
    /// the wire format of the crash-isolation pipe protocol —
    /// docs/robustness.md).  False when `line` is not a complete run-store
    /// record.
    static bool parse_line(const std::string& line, RunRecord& out);

    /// Parses one JSONL file; lines that are not run-store records are
    /// skipped.  Throws std::runtime_error when the file cannot be read.
    static std::vector<RunRecord> parse_file(const std::string& path);

    /// Parses every *.jsonl under the root (sorted by filename, so the
    /// result order is stable).  An absent root yields an empty vector.
    std::vector<RunRecord> load_all() const;

    /// Serializes one record to its JSONL line (no trailing newline).
    /// Doubles are printed with 17 significant digits, so equal doubles
    /// always print identically and values round-trip exactly.
    static std::string to_json(const RunRecord& record);

private:
    std::string root_;
};

/// Aggregate view of one scenario across every stored seed, the shape the
/// `report` generator renders.
struct ScenarioSummary {
    std::string scenario;
    std::string family;
    /// Run configuration this row aggregates: quick and full-size runs
    /// (or different batch sizes) of one scenario produce separate rows —
    /// their objectives are not comparable, so pooling them would corrupt
    /// the cross-seed mean/stddev the report presents as the
    /// reproducibility measure.
    bool quick = false;
    std::uint64_t batch = 1;
    std::string build;          ///< build stamp of the latest record seen
    std::size_t runs = 0;       ///< completed runs (summary records)
    /// Complete trial series.  A series is one run identity — (quick,
    /// batch, seed) — so a --quick re-run never splices into a full-size
    /// series, and interrupted never-resumed series are excluded from
    /// every aggregate below (their truncated history would skew the
    /// reproducibility numbers).
    std::size_t seeds = 0;
    std::size_t trial_records = 0;
    /// Trial records whose status is not "ok" — quarantined (NaN /
    /// crashed / timed-out) trials, so the report can tabulate failure
    /// rates per scenario configuration (docs/robustness.md).
    std::size_t failed_trials = 0;
    bool has_search = false;    ///< any trial records at all
    // Best across all seeds:
    double best_objective = 0.0;
    std::string best_point;
    std::uint64_t best_seed = 0;
    // Across the per-seed bests:
    double mean_best = 0.0;
    double stddev_best = 0.0;
    /// Mean (across seeds) of the first 1-based trial count reaching
    /// within the target fraction of that seed's final best.
    double mean_trials_to_target = 0.0;
    double mean_seconds = 0.0;  ///< across summary records
};

/// Groups records per (family, scenario, quick, batch), resolving
/// duplicate (seed, trial) pairs latest-wins, and computes the
/// aggregates.  Ordered by family, scenario, then configuration.
/// `target_fraction` defines trials-to-target: a trial reaches target
/// when objective >= best - (1 - f) * |best|.
std::vector<ScenarioSummary> summarize_runs(
    const std::vector<RunRecord>& records, double target_fraction = 0.99);

/// Validates that `path` can be created or overwritten as a regular file
/// before any long computation runs: throws std::runtime_error with a
/// clear message when it is a directory or cannot be opened for writing.
/// Never truncates an existing file; a file created by the probe is
/// removed again.
void validate_output_file(const std::string& path);

// ---------------------------------------------------------------------------
// IEEE-754 wire codec shared by every line protocol that ships doubles
// between processes — the distributed worker pipe (docs/distributed.md)
// and the evaluation server (docs/serving.md).  A double travels as the
// 16 lowercase hex digits of its bit pattern, so values — including NaNs,
// infinities, and signed zeros — arrive bit-exactly without a decimal
// round trip (which would be a covert source of drift).
// ---------------------------------------------------------------------------

/// 64-bit identifier (digest, seed) -> 16 lowercase hex digits.
std::string format_hex(std::uint64_t value);
/// Strict inverse of format_hex: accepts 1-16 hex digits (either case)
/// and nothing else — no sign, no "0x" prefix, no trailing bytes.  False
/// leaves `out` untouched.
bool parse_hex(const std::string& text, std::uint64_t& out);
/// Double -> the 16 hex digits of its IEEE-754 bit pattern.
std::string format_bits(double value);
/// Strict inverse of format_bits (same grammar as parse_hex).
bool parse_bits(const std::string& text, double& out);

}  // namespace bayesft::core
