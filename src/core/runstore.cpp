#include "core/runstore.hpp"

#include "core/persist.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <stdexcept>
#include <tuple>
#include <utility>

namespace bayesft::core {

namespace {

namespace fs = std::filesystem;

std::string escape(const std::string& text) {
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        if (c == '"' || c == '\\') out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

std::string format_real(double value) {
    char buffer[40];
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    return buffer;
}

/// Finds `"key":` in a compact JSON line and returns the offset just past
/// the colon, or npos.
std::size_t value_offset(const std::string& line, const char* key) {
    const std::string needle = std::string("\"") + key + "\":";
    const std::size_t at = line.find(needle);
    return at == std::string::npos ? std::string::npos : at + needle.size();
}

bool read_string(const std::string& line, const char* key,
                 std::string& out) {
    std::size_t at = value_offset(line, key);
    if (at == std::string::npos || at >= line.size() || line[at] != '"') {
        return false;
    }
    ++at;
    std::string value;
    while (at < line.size() && line[at] != '"') {
        if (line[at] == '\\' && at + 1 < line.size()) ++at;
        value.push_back(line[at]);
        ++at;
    }
    if (at >= line.size()) return false;  // unterminated
    out = std::move(value);
    return true;
}

bool read_real(const std::string& line, const char* key, double& out) {
    const std::size_t at = value_offset(line, key);
    if (at == std::string::npos) return false;
    try {
        out = std::stod(line.substr(at));
        return true;
    } catch (const std::exception&) {
        return false;
    }
}

bool read_unsigned(const std::string& line, const char* key,
                   std::uint64_t& out) {
    const std::size_t at = value_offset(line, key);
    if (at == std::string::npos) return false;
    try {
        out = std::stoull(line.substr(at));
        return true;
    } catch (const std::exception&) {
        return false;
    }
}

bool read_bool(const std::string& line, const char* key, bool& out) {
    const std::size_t at = value_offset(line, key);
    if (at == std::string::npos) return false;
    out = line.compare(at, 4, "true") == 0;
    return true;
}

double mean_of(const std::vector<double>& values) {
    if (values.empty()) return 0.0;
    double sum = 0.0;
    for (double v : values) sum += v;
    return sum / static_cast<double>(values.size());
}

}  // namespace

RunStore::RunStore(std::string root) : root_(std::move(root)) {
    if (root_.empty()) {
        throw std::runtime_error("run store: empty root directory");
    }
}

std::string RunStore::to_json(const RunRecord& r) {
    std::string out = "{\"kind\":\"" + escape(r.kind) + "\"";
    out += ",\"scenario\":\"" + escape(r.scenario) + "\"";
    out += ",\"family\":\"" + escape(r.family) + "\"";
    out += ",\"seed\":" + std::to_string(r.seed);
    if (r.kind == "trial") {
        out += ",\"trial\":" + std::to_string(r.trial);
        out += ",\"point\":\"" + escape(r.point) + "\"";
        out += ",\"objective\":" + format_real(r.objective);
        out += ",\"status\":\"" + escape(r.status) + "\"";
    } else {
        out += ",\"trials\":" + std::to_string(r.trials);
        out += ",\"best_trial\":" + std::to_string(r.best_trial);
        out += ",\"best_point\":\"" + escape(r.best_point) + "\"";
        out += ",\"best_objective\":" + format_real(r.best_objective);
        out += ",\"annotation\":\"" + escape(r.annotation) + "\"";
        out += ",\"seconds\":" + format_real(r.seconds);
    }
    out += ",\"batch\":" + std::to_string(r.batch);
    if (r.kind != "trial") {
        // Thread and worker counts are the machine-dependent knobs:
        // results are invariant to both, so they are provenance
        // (summary-only), never part of a trial record — those must be
        // byte-identical across a resume at a different thread or worker
        // count (docs/checkpointing.md, docs/distributed.md).
        out += ",\"threads\":" + std::to_string(r.threads);
        out += ",\"workers\":" + std::to_string(r.workers);
    }
    out += std::string(",\"quick\":") + (r.quick ? "true" : "false");
    out += ",\"build\":\"" + escape(r.build) + "\"}";
    return out;
}

void RunStore::probe() const {
    std::error_code error;
    fs::create_directories(root_, error);
    if (error) {
        throw std::runtime_error("run store: cannot create directory '" +
                                 root_ + "': " + error.message());
    }
    validate_output_file(root_ + "/.write-probe");
}

void RunStore::append(const std::string& scenario,
                      const std::vector<RunRecord>& records) {
    if (records.empty()) return;
    std::error_code error;
    fs::create_directories(root_, error);
    if (error) {
        throw std::runtime_error("run store: cannot create directory '" +
                                 root_ + "': " + error.message());
    }
    const std::string path = root_ + "/" + scenario + ".jsonl";
    if (fs::is_directory(path)) {
        throw std::runtime_error("run store: '" + path +
                                 "' is a directory, not a record file");
    }
    std::ofstream out(path, std::ios::app);
    if (!out) {
        throw std::runtime_error("run store: cannot append to '" + path +
                                 "'");
    }
    for (const RunRecord& record : records) {
        out << to_json(record) << '\n';
    }
    out.flush();
    if (!out) {
        throw std::runtime_error("run store: write to '" + path +
                                 "' failed");
    }
    out.close();
    // Durability: a power loss after this append returns must not be able
    // to roll the records back (torn trailing lines are tolerated by
    // parse_file, but a silently vanished append would desynchronize the
    // store from the checkpoint it rides along with).
    fsync_file(path);
    fsync_parent_dir(path);
}

bool RunStore::parse_line(const std::string& line, RunRecord& r) {
    // A line torn by a mid-append kill must be dropped, not parsed with
    // defaulted fields (a truncated trial would poison the latest-wins
    // aggregation and block the resume backfill): the writer always
    // terminates lines with '}', and every kind-specific field below is
    // required.
    if (line.empty() || line.front() != '{' || line.back() != '}') {
        return false;
    }
    if (!read_string(line, "kind", r.kind) ||
        (r.kind != "trial" && r.kind != "summary")) {
        return false;
    }
    // Two writers interleaving appends (or a partial write completed by a
    // later line) can weld the head of one record onto another — the
    // result has a '{', a '}', and plausible fields from both.  A genuine
    // record carries its "kind" exactly once; a frankenline carries two.
    if (line.find("\"kind\":", value_offset(line, "kind")) !=
        std::string::npos) {
        return false;
    }
    if (!read_string(line, "scenario", r.scenario) ||
        !read_unsigned(line, "seed", r.seed)) {
        return false;
    }
    read_string(line, "family", r.family);
    read_string(line, "build", r.build);
    read_unsigned(line, "batch", r.batch);
    read_unsigned(line, "threads", r.threads);
    read_unsigned(line, "workers", r.workers);
    read_bool(line, "quick", r.quick);
    if (r.kind == "trial") {
        if (!read_unsigned(line, "trial", r.trial) ||
            !read_string(line, "point", r.point) ||
            !read_real(line, "objective", r.objective)) {
            return false;
        }
        // Absent in pre-robustness files: every stored trial was ok.
        if (!read_string(line, "status", r.status)) r.status = "ok";
    } else {
        if (!read_unsigned(line, "trials", r.trials) ||
            !read_real(line, "seconds", r.seconds)) {
            return false;
        }
        read_unsigned(line, "best_trial", r.best_trial);
        read_string(line, "best_point", r.best_point);
        read_real(line, "best_objective", r.best_objective);
        read_string(line, "annotation", r.annotation);
    }
    return true;
}

std::vector<RunRecord> RunStore::parse_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) {
        throw std::runtime_error("run store: cannot read '" + path + "'");
    }
    std::vector<RunRecord> records;
    std::string line;
    while (std::getline(in, line)) {
        RunRecord r;
        if (parse_line(line, r)) records.push_back(std::move(r));
    }
    return records;
}

std::vector<RunRecord> RunStore::load_all() const {
    std::vector<RunRecord> records;
    std::error_code error;
    if (!fs::is_directory(root_, error)) return records;
    std::vector<std::string> paths;
    for (const auto& entry : fs::directory_iterator(root_, error)) {
        if (entry.is_regular_file() &&
            entry.path().extension() == ".jsonl") {
            paths.push_back(entry.path().string());
        }
    }
    std::sort(paths.begin(), paths.end());
    for (const std::string& path : paths) {
        std::vector<RunRecord> file = parse_file(path);
        records.insert(records.end(),
                       std::make_move_iterator(file.begin()),
                       std::make_move_iterator(file.end()));
    }
    return records;
}

std::vector<ScenarioSummary> summarize_runs(
    const std::vector<RunRecord>& records, double target_fraction) {
    struct Trial {
        double objective = 0.0;
        std::string point;
        std::string status;
    };
    // One aggregation bucket = one run configuration of one scenario:
    // quick and full-size runs (or different batch sizes) must neither
    // splice into one series nor pool into one mean/stddev — their
    // objectives are not comparable.
    using BucketKey = std::tuple<std::string, bool, std::uint64_t>;
    struct Bucket {
        std::string family;
        std::string build;
        std::size_t runs = 0;
        std::size_t trial_records = 0;
        // (seed, trial index) -> latest record, so a re-run of one seed
        // replaces rather than double-counts its trials.
        std::map<std::pair<std::uint64_t, std::uint64_t>, Trial> trials;
        // Seeds whose run completed (left a summary record):
        // interrupted, never-resumed seeds must not skew the
        // reproducibility aggregates with their truncated history.
        std::set<std::uint64_t> completed;
        std::vector<double> seconds;
    };
    std::map<BucketKey, Bucket> buckets;
    for (const RunRecord& r : records) {
        Bucket& bucket = buckets[{r.scenario, r.quick, r.batch}];
        if (bucket.family.empty()) bucket.family = r.family;
        if (!r.build.empty()) bucket.build = r.build;
        if (r.kind == "trial") {
            ++bucket.trial_records;
            bucket.trials[{r.seed, r.trial}] = {r.objective, r.point,
                                                r.status};
        } else {
            ++bucket.runs;
            bucket.completed.insert(r.seed);
            bucket.seconds.push_back(r.seconds);
        }
    }

    std::vector<ScenarioSummary> summaries;
    summaries.reserve(buckets.size());
    for (const auto& [key, bucket] : buckets) {
        ScenarioSummary s;
        s.scenario = std::get<0>(key);
        s.quick = std::get<1>(key);
        s.batch = std::get<2>(key);
        s.family = bucket.family;
        s.build = bucket.build;
        s.runs = bucket.runs;
        s.trial_records = bucket.trial_records;
        // Counted over the deduplicated (latest-wins) trials, matching the
        // aggregates below: a re-run that recovered a once-failed trial
        // does not keep reporting the stale failure.
        for (const auto& [trial_key, trial] : bucket.trials) {
            (void)trial_key;
            if (trial.status != "ok") ++s.failed_trials;
        }
        s.has_search = !bucket.trials.empty();
        s.mean_seconds = mean_of(bucket.seconds);
        if (s.has_search) {
            // Per-seed aggregation (the map iterates seed-major,
            // trial-minor).
            std::vector<double> seed_bests;
            std::vector<double> to_target;
            std::uint64_t current_series = 0;
            std::vector<Trial> series;
            bool best_set = false;
            auto flush = [&]() {
                if (series.empty()) return;
                if (bucket.completed.count(current_series) == 0) {
                    // Partial series (interrupted, not yet resumed to
                    // completion): its truncated best would deflate the
                    // mean and inflate the stddev.
                    series.clear();
                    return;
                }
                std::size_t best_at = 0;
                for (std::size_t i = 1; i < series.size(); ++i) {
                    if (series[i].objective > series[best_at].objective) {
                        best_at = i;
                    }
                }
                const double best = series[best_at].objective;
                seed_bests.push_back(best);
                const double target =
                    best - (1.0 - target_fraction) * std::fabs(best);
                for (std::size_t i = 0; i < series.size(); ++i) {
                    if (series[i].objective >= target) {
                        to_target.push_back(static_cast<double>(i + 1));
                        break;
                    }
                }
                if (!best_set || best > s.best_objective) {
                    s.best_objective = best;
                    s.best_point = series[best_at].point;
                    s.best_seed = current_series;
                    best_set = true;
                }
                series.clear();
            };
            bool first = true;
            for (const auto& [key, trial] : bucket.trials) {
                if (!first && key.first != current_series) flush();
                if (first || key.first != current_series) {
                    current_series = key.first;
                    first = false;
                }
                series.push_back(trial);
            }
            flush();
            s.seeds = seed_bests.size();
            if (!seed_bests.empty()) {
                s.mean_best = mean_of(seed_bests);
                double var = 0.0;
                for (double b : seed_bests) {
                    var += (b - s.mean_best) * (b - s.mean_best);
                }
                var /= static_cast<double>(seed_bests.size());
                s.stddev_best = std::sqrt(var);
                s.mean_trials_to_target = mean_of(to_target);
            }
        }
        summaries.push_back(std::move(s));
    }
    std::sort(summaries.begin(), summaries.end(),
              [](const ScenarioSummary& a, const ScenarioSummary& b) {
                  return std::tie(a.family, a.scenario, a.quick, a.batch) <
                         std::tie(b.family, b.scenario, b.quick, b.batch);
              });
    return summaries;
}

std::string format_hex(std::uint64_t value) {
    char buffer[24];
    std::snprintf(buffer, sizeof buffer, "%016llx",
                  static_cast<unsigned long long>(value));
    return buffer;
}

bool parse_hex(const std::string& text, std::uint64_t& out) {
    if (text.empty() || text.size() > 16) return false;
    std::uint64_t bits = 0;
    for (char c : text) {
        int digit = 0;
        if (c >= '0' && c <= '9') {
            digit = c - '0';
        } else if (c >= 'a' && c <= 'f') {
            digit = c - 'a' + 10;
        } else if (c >= 'A' && c <= 'F') {
            digit = c - 'A' + 10;
        } else {
            return false;
        }
        bits = (bits << 4) | static_cast<std::uint64_t>(digit);
    }
    out = bits;
    return true;
}

std::string format_bits(double value) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof bits);
    return format_hex(bits);
}

bool parse_bits(const std::string& text, double& out) {
    std::uint64_t bits = 0;
    if (!parse_hex(text, bits)) return false;
    std::memcpy(&out, &bits, sizeof out);
    return true;
}

void validate_output_file(const std::string& path) {
    std::error_code error;
    if (fs::is_directory(path, error)) {
        throw std::runtime_error("output path '" + path +
                                 "' is a directory, not a file");
    }
    const bool existed = fs::exists(path, error);
    {
        // Append mode probes writability without truncating existing data.
        std::ofstream probe(path, std::ios::app);
        if (!probe) {
            throw std::runtime_error(
                "output path '" + path +
                "' is not writable (missing directory or no permission)");
        }
    }
    if (!existed) fs::remove(path, error);
}

}  // namespace bayesft::core
