#pragma once
// Distributed candidate evaluation (docs/distributed.md): a coordinator /
// worker split of the self-contained point-evaluation path.  The
// coordinator — the process that owns the GP, the checkpoint, and the run
// store — keeps proposing candidate groups exactly as before; a WorkerPool
// of N forked worker processes of the same binary evaluates them.
//
// Protocol (one attempt):
//   coordinator -> worker   one request line over a pipe:
//       eval <index> <attempt> <cseed> <n> <hex0> ... <hexN-1>\n
//     where each <hexK> is the IEEE-754 bit pattern of one encoded point
//     coordinate — bit-exact, no decimal round trip — and <cseed> is
//     candidate_seed(context, point), computed by the coordinator so
//     workers never need the evaluation context.
//   worker -> coordinator   one run-store JSONL trial line (the PR 6 wire
//     format, RunStore::to_json/parse_line): kind "trial", seed = cseed,
//     trial = index, objective = the utility, status = the attempt's
//     outcome class.  Closing the request pipe is the shutdown signal.
//
// Determinism contract: a candidate's RNG stream derives purely from its
// cseed, utilities cross the pipe bit-exactly, and retry/chaos decisions
// are pure functions of (cseed, attempt) — so the search result is
// bit-identical for every worker count, including zero (in-process).
//
// Failure semantics reuse the PR 6 classifier: a worker that dies
// mid-evaluation (SIGKILL, abort, protocol desync) yields a failed_crash
// attempt and a respawned worker; one that outlives the trial deadline is
// SIGKILLed and yields failed_timeout; a reported non-finite objective is
// failed_nan.  Failed attempts are re-dispatched with deterministic
// backoff until ResilienceConfig::max_retries, then quarantined, exactly
// like the in-process and crash-isolation paths.  A spawn watchdog
// degrades the pool to in-process evaluation after repeated fork/pipe
// failures.

#include <cstdint>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/trial.hpp"
#include "fault/chaos.hpp"

namespace bayesft::core {

/// A pool of persistent forked worker processes evaluating self-contained
/// candidates.  Created lazily by the EvaluationEngine on the first
/// distributed evaluate_points call and kept for the engine's lifetime, so
/// one search forks its workers once, not once per batch.
///
/// The evaluator is bound when the pool spawns (workers inherit it through
/// fork), so every later evaluate() must pass candidates the same
/// evaluator would score — true for the self-contained searches
/// (arch_search), whose evaluator closure is fixed for the whole run.
class WorkerPool {
public:
    struct Config {
        /// Worker processes to fork (>= 1; the engine maps its
        /// `workers == 0` in-process default before constructing a pool).
        std::size_t workers = 1;
        ResilienceConfig resilience;
        fault::ChaosSpec chaos;
    };

    /// Forks the workers.  A failed spawn is not fatal here: evaluate()
    /// respawns on demand and the watchdog degrades the pool instead.
    WorkerPool(Config config, PointEvaluator evaluator);
    /// Shuts the pool down: closes the request pipes (workers exit on
    /// EOF), SIGKILLs stragglers after a short grace, and reaps them all.
    ~WorkerPool();

    WorkerPool(const WorkerPool&) = delete;
    WorkerPool& operator=(const WorkerPool&) = delete;

    /// True once the spawn watchdog tripped: repeated worker-spawn
    /// failures degraded this pool permanently; callers should evaluate
    /// in-process from then on.
    bool degraded() const { return degraded_; }

    /// Evaluates points[j] for every j in `live`, filling
    /// outcome.utilities / outcome.statuses at those indices (identical
    /// classification and retry semantics to the in-process path).  Jobs
    /// stranded by a mid-batch watchdog trip are finished in-process with
    /// their remaining retry budget, so the outcome is always complete.
    void evaluate(const std::vector<Alpha>& points,
                  const std::vector<std::size_t>& live,
                  const EvalContext& context, BatchOutcome& outcome);

private:
    struct Worker {
        long pid = -1;        ///< pid_t, widened to keep the header portable
        int request_fd = -1;  ///< coordinator writes request lines
        int response_fd = -1; ///< coordinator reads trial lines (nonblocking)
        std::string buffer;   ///< partial response line
        bool busy = false;
        std::size_t job_index = 0;
        std::uint64_t job_attempt = 0;
        bool has_deadline = false;
        std::int64_t deadline_ns = 0;  ///< steady-clock epoch nanoseconds
    };

    /// Spawns one worker into `slot`; false on a (real or chaos-injected)
    /// spawn failure, which feeds the watchdog.
    bool spawn_worker(std::size_t slot);
    void shutdown_worker(Worker& worker, bool kill);

    Config config_;
    PointEvaluator evaluator_;
    std::vector<Worker> workers_;
    /// Per-slot spawn counter: keys the chaos spawn-failure stream so an
    /// injected failure is a deterministic property of (slot, respawn).
    std::vector<std::uint64_t> spawn_counts_;
    std::size_t consecutive_spawn_failures_ = 0;
    bool degraded_ = false;
};

}  // namespace bayesft::core
