#include "core/distrib.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <limits>
#include <sstream>
#include <string>
#include <thread>

#include "core/attempt.hpp"
#include "core/runstore.hpp"
#include "utils/logging.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#define BAYESFT_HAS_FORK 1
#endif

namespace bayesft::core {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// Consecutive worker-spawn failures before the watchdog degrades the
/// pool (same threshold as the crash-isolation watchdog in engine.cpp).
constexpr std::size_t kSpawnFailureLimit = 3;

/// Tag folded into the chaos spawn-failure stream so pool spawns draw
/// independently of per-candidate isolated-attempt spawns.
constexpr std::uint64_t kWorkerSpawnTag = 0x776F726B65724FULL;  // "workerO"

#ifdef BAYESFT_HAS_FORK

using Clock = std::chrono::steady_clock;

std::int64_t to_epoch_ns(Clock::time_point at) {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               at.time_since_epoch())
        .count();
}

/// One decoded coordinator request.
struct Request {
    std::size_t index = 0;
    std::uint64_t attempt = 0;
    std::uint64_t cseed = 0;
    Alpha point;
};

/// `eval <index> <attempt> <cseed> <n> <hex...>` — coordinates travel as
/// IEEE-754 bit patterns (runstore format_bits), so the point reaches the
/// worker bit-exactly (a decimal round trip would be a covert source of
/// drift).
std::string build_request(std::size_t index, std::uint64_t attempt,
                          std::uint64_t cseed, const Alpha& point) {
    std::string line = "eval " + std::to_string(index) + ' ' +
                       std::to_string(attempt) + ' ' +
                       std::to_string(cseed) + ' ' +
                       std::to_string(point.size());
    for (const double value : point) {
        line += ' ';
        line += format_bits(value);
    }
    line += '\n';
    return line;
}

bool parse_request(const std::string& line, Request& out) {
    std::istringstream in(line);
    std::string tag;
    unsigned long long index = 0, attempt = 0, cseed = 0, count = 0;
    if (!(in >> tag >> index >> attempt >> cseed >> count) ||
        tag != "eval") {
        return false;
    }
    out.index = static_cast<std::size_t>(index);
    out.attempt = attempt;
    out.cseed = cseed;
    out.point.assign(static_cast<std::size_t>(count), 0.0);
    for (double& value : out.point) {
        std::string hex;
        if (!(in >> hex) || !parse_bits(hex, value)) return false;
    }
    return true;
}

bool write_all(int fd, const std::string& data) {
    const char* cursor = data.data();
    std::size_t left = data.size();
    while (left > 0) {
        const ssize_t wrote = ::write(fd, cursor, left);
        if (wrote <= 0) {
            if (wrote < 0 && errno == EINTR) continue;
            return false;
        }
        cursor += wrote;
        left -= static_cast<std::size_t>(wrote);
    }
    return true;
}

/// Writes to a worker whose other end may have vanished must come back as
/// EPIPE (classified as a worker death), not kill the coordinator.  Set
/// once, process-wide, before the first pipe write.
void ignore_sigpipe_once() {
    static const bool done = [] {
        struct sigaction action {};
        action.sa_handler = SIG_IGN;
        ::sigaction(SIGPIPE, &action, nullptr);
        return true;
    }();
    (void)done;
}

/// Evaluates one request and writes its run-store trial line.  Chaos
/// semantics in a persistent worker: `worker_crash` aborts the whole
/// process (the coordinator must recover); `crash` is an attempt-level
/// failure the worker survives and reports; `hang` blocks until the
/// coordinator's SIGKILL deadline; `nan` poisons the objective.
void serve_request(int response_fd, const WorkerPool::Config& config,
                   const PointEvaluator& evaluator, const Request& request) {
    if (fault::chaos_worker_crash(config.chaos, request.cseed,
                                  request.attempt)) {
        std::abort();
    }
    const fault::ChaosAction action =
        fault::chaos_decide(config.chaos, request.cseed, request.attempt);
    TrialStatus status = TrialStatus::kOk;
    double utility = kNaN;
    if (action == fault::ChaosAction::kCrash) {
        status = TrialStatus::kFailedCrash;
    } else if (action == fault::ChaosAction::kHang &&
               config.resilience.timeout_seconds > 0.0) {
        std::this_thread::sleep_for(std::chrono::hours(1));
        ::_exit(4);
    } else {
        try {
            Rng rng(request.cseed);
            utility = evaluator(request.point, rng);
        } catch (const std::exception&) {
            status = TrialStatus::kFailedCrash;
            utility = kNaN;
        }
        if (status == TrialStatus::kOk) {
            if (action == fault::ChaosAction::kNaN) utility = kNaN;
            if (!std::isfinite(utility)) status = TrialStatus::kFailedNaN;
        }
    }
    RunRecord record;
    record.kind = "trial";
    record.scenario = "distributed-eval";
    record.family = "engine";
    record.seed = request.cseed;
    record.trial = request.index;
    record.point = "-";
    record.objective = utility;
    record.status = trial_status_name(status);
    if (!write_all(response_fd, RunStore::to_json(record) + "\n")) {
        ::_exit(5);
    }
}

/// The worker process: serve request lines until the coordinator closes
/// the request pipe (EOF is the shutdown signal).
[[noreturn]] void worker_main(int request_fd, int response_fd,
                              const WorkerPool::Config& config,
                              const PointEvaluator& evaluator) {
    std::string buffer;
    char chunk[4096];
    for (;;) {
        std::size_t newline = std::string::npos;
        while ((newline = buffer.find('\n')) == std::string::npos) {
            const ssize_t got = ::read(request_fd, chunk, sizeof chunk);
            if (got < 0 && errno == EINTR) continue;
            if (got <= 0) ::_exit(0);
            buffer.append(chunk, static_cast<std::size_t>(got));
        }
        const std::string line = buffer.substr(0, newline);
        buffer.erase(0, newline + 1);
        Request request;
        if (!parse_request(line, request)) ::_exit(6);
        serve_request(response_fd, config, evaluator, request);
    }
}

#endif  // BAYESFT_HAS_FORK

}  // namespace

#ifdef BAYESFT_HAS_FORK

WorkerPool::WorkerPool(Config config, PointEvaluator evaluator)
    : config_(std::move(config)), evaluator_(std::move(evaluator)) {
    ignore_sigpipe_once();
    const std::size_t n = std::max<std::size_t>(1, config_.workers);
    workers_.resize(n);
    spawn_counts_.assign(n, 0);
    for (std::size_t slot = 0; slot < n && !degraded_; ++slot) {
        spawn_worker(slot);
    }
}

WorkerPool::~WorkerPool() {
    // EOF on the request pipe is the shutdown signal; workers that ignore
    // it (hung by injected chaos) are SIGKILLed after a short grace.
    for (Worker& worker : workers_) {
        if (worker.request_fd >= 0) ::close(worker.request_fd);
        worker.request_fd = -1;
    }
    const auto grace_end = Clock::now() + std::chrono::milliseconds(250);
    for (Worker& worker : workers_) {
        if (worker.pid < 0) continue;
        const pid_t pid = static_cast<pid_t>(worker.pid);
        int status = 0;
        pid_t reaped = 0;
        while ((reaped = ::waitpid(pid, &status, WNOHANG)) == 0 &&
               Clock::now() < grace_end) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        if (reaped == 0) {
            ::kill(pid, SIGKILL);
            ::waitpid(pid, &status, 0);
        }
        if (worker.response_fd >= 0) ::close(worker.response_fd);
        worker.pid = -1;
        worker.response_fd = -1;
    }
}

bool WorkerPool::spawn_worker(std::size_t slot) {
    Worker& worker = workers_[slot];
    bool failed = fault::chaos_spawn_failure(
        config_.chaos, kWorkerSpawnTag ^ static_cast<std::uint64_t>(slot),
        spawn_counts_[slot]);
    ++spawn_counts_[slot];
    int request_fds[2] = {-1, -1};
    int response_fds[2] = {-1, -1};
    if (!failed && ::pipe(request_fds) != 0) failed = true;
    if (!failed && ::pipe(response_fds) != 0) {
        ::close(request_fds[0]);
        ::close(request_fds[1]);
        failed = true;
    }
    pid_t pid = -1;
    if (!failed) {
        pid = ::fork();
        if (pid < 0) {
            failed = true;
            ::close(request_fds[0]);
            ::close(request_fds[1]);
            ::close(response_fds[0]);
            ::close(response_fds[1]);
        }
    }
    if (failed) {
        if (++consecutive_spawn_failures_ >= kSpawnFailureLimit &&
            !degraded_) {
            degraded_ = true;
            log_warn() << "worker pool: " << consecutive_spawn_failures_
                       << " consecutive worker-spawn failures; degrading "
                          "to in-process evaluation for the rest of the run";
        }
        return false;
    }
    consecutive_spawn_failures_ = 0;

    if (pid == 0) {
        // --- worker: keep only this worker's two pipe ends.  Sibling fds
        // inherited through fork must go, or a sibling's request pipe
        // never reaches EOF while this worker lives.
        ::close(request_fds[1]);
        ::close(response_fds[0]);
        for (const Worker& other : workers_) {
            if (other.request_fd >= 0) ::close(other.request_fd);
            if (other.response_fd >= 0) ::close(other.response_fd);
        }
        worker_main(request_fds[0], response_fds[1], config_, evaluator_);
    }

    // --- coordinator
    ::close(request_fds[0]);
    ::close(response_fds[1]);
    ::fcntl(response_fds[0], F_SETFL, O_NONBLOCK);
    worker.pid = pid;
    worker.request_fd = request_fds[1];
    worker.response_fd = response_fds[0];
    worker.buffer.clear();
    worker.busy = false;
    return true;
}

void WorkerPool::shutdown_worker(Worker& worker, bool kill) {
    if (worker.pid >= 0) {
        const pid_t pid = static_cast<pid_t>(worker.pid);
        if (kill) ::kill(pid, SIGKILL);
        int status = 0;
        ::waitpid(pid, &status, 0);
    }
    if (worker.request_fd >= 0) ::close(worker.request_fd);
    if (worker.response_fd >= 0) ::close(worker.response_fd);
    worker.pid = -1;
    worker.request_fd = -1;
    worker.response_fd = -1;
    worker.buffer.clear();
    worker.busy = false;
}

void WorkerPool::evaluate(const std::vector<Alpha>& points,
                          const std::vector<std::size_t>& live,
                          const EvalContext& context, BatchOutcome& outcome) {
    struct Job {
        std::size_t index = 0;
        std::uint64_t attempt = 0;
        Clock::time_point not_before;
    };
    std::deque<Job> queue;
    const Clock::time_point start = Clock::now();
    for (const std::size_t j : live) queue.push_back({j, 0, start});

    const ResilienceConfig& resilience = config_.resilience;
    auto cseed_of = [&](std::size_t index) {
        return candidate_seed(context, points[index]);
    };

    // Watchdog fallback: one candidate finished in-process with its
    // remaining retry budget — the only path a stranded job takes once
    // the pool degrades mid-batch.
    auto run_in_process = [&](const Job& job) {
        const std::uint64_t cseed = cseed_of(job.index);
        const AttemptResult result = evaluate_with_retries(
            config_.chaos, resilience, cseed, job.attempt, [&] {
                Rng rng(cseed);
                return evaluator_(points[job.index], rng);
            });
        outcome.utilities[job.index] = result.utility;
        outcome.statuses[job.index] = result.status;
    };

    // Identical retry/quarantine semantics to the other evaluation paths:
    // a failed attempt re-enters the queue with deterministic backoff
    // until the retry budget runs out, then the failure is recorded.
    auto finalize = [&](std::size_t index, std::uint64_t attempt,
                        TrialStatus status, double utility) {
        if (status != TrialStatus::kOk && attempt < resilience.max_retries) {
            queue.push_back(
                {index, attempt + 1,
                 Clock::now() + backoff_duration(resilience, cseed_of(index),
                                                 attempt)});
            return;
        }
        outcome.utilities[index] = utility;
        outcome.statuses[index] = status;
    };

    for (;;) {
        if (degraded_) {
            // The watchdog tripped (possibly mid-batch): everything still
            // queued runs in-process; busy workers below finish normally.
            while (!queue.empty()) {
                run_in_process(queue.front());
                queue.pop_front();
            }
        }
        bool any_busy = false;
        for (const Worker& worker : workers_) any_busy |= worker.busy;
        if (queue.empty() && !any_busy) break;

        bool progressed = false;

        // Dispatch ready jobs to idle workers, respawning dead slots on
        // demand (each failed respawn feeds the watchdog).
        for (auto it = queue.begin(); !degraded_ && it != queue.end();) {
            if (it->not_before > Clock::now()) {
                ++it;
                continue;
            }
            std::size_t slot = workers_.size();
            for (std::size_t i = 0; i < workers_.size(); ++i) {
                if (!workers_[i].busy && workers_[i].pid >= 0) {
                    slot = i;
                    break;
                }
            }
            if (slot == workers_.size()) {
                for (std::size_t i = 0; i < workers_.size(); ++i) {
                    if (workers_[i].pid < 0) {
                        if (spawn_worker(i)) slot = i;
                        break;
                    }
                }
            }
            if (slot == workers_.size()) break;  // all busy or spawn failed

            const Job job = *it;
            it = queue.erase(it);
            Worker& worker = workers_[slot];
            const std::string request = build_request(
                job.index, job.attempt, cseed_of(job.index),
                points[job.index]);
            if (!write_all(worker.request_fd, request)) {
                // The worker died between jobs: the write is the attempt,
                // so classify it as a crash and retire the slot.
                shutdown_worker(worker, /*kill=*/false);
                finalize(job.index, job.attempt, TrialStatus::kFailedCrash,
                         kNaN);
                progressed = true;
                continue;
            }
            worker.busy = true;
            worker.job_index = job.index;
            worker.job_attempt = job.attempt;
            worker.has_deadline = resilience.timeout_seconds > 0.0;
            if (worker.has_deadline) {
                worker.deadline_ns = to_epoch_ns(
                    Clock::now() +
                    std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(
                            resilience.timeout_seconds)));
            }
            progressed = true;
        }

        // Poll the busy workers: drain responses, classify complete trial
        // lines, detect deaths, enforce deadlines.
        for (Worker& worker : workers_) {
            if (!worker.busy) continue;
            char buf[512];
            ssize_t got = 0;
            bool saw_eof = false;
            while ((got = ::read(worker.response_fd, buf, sizeof buf)) > 0) {
                worker.buffer.append(buf, static_cast<std::size_t>(got));
            }
            if (got == 0) saw_eof = true;

            const std::size_t newline = worker.buffer.find('\n');
            if (newline != std::string::npos) {
                const std::string line = worker.buffer.substr(0, newline);
                worker.buffer.erase(0, newline + 1);
                RunRecord record;
                const bool parsed =
                    RunStore::parse_line(line, record) &&
                    record.kind == "trial" &&
                    record.trial == worker.job_index;
                if (!parsed) {
                    // Torn or foreign line: the protocol is desynchronized
                    // beyond repair for this worker — kill and respawn.
                    const std::size_t index = worker.job_index;
                    const std::uint64_t attempt = worker.job_attempt;
                    shutdown_worker(worker, /*kill=*/true);
                    finalize(index, attempt, TrialStatus::kFailedCrash,
                             kNaN);
                } else {
                    TrialStatus status =
                        parse_trial_status(record.status)
                            .value_or(TrialStatus::kFailedCrash);
                    double utility = kNaN;
                    if (status == TrialStatus::kOk) {
                        // Defense in depth: "ok" with a non-finite
                        // objective is a NaN failure, as on every path.
                        if (std::isfinite(record.objective)) {
                            utility = record.objective;
                        } else {
                            status = TrialStatus::kFailedNaN;
                        }
                    }
                    worker.busy = false;
                    finalize(worker.job_index, worker.job_attempt, status,
                             utility);
                }
                progressed = true;
                continue;
            }
            if (saw_eof) {
                // EOF without a complete line: the worker died
                // mid-evaluation (SIGKILL, abort, injected worker_crash).
                const std::size_t index = worker.job_index;
                const std::uint64_t attempt = worker.job_attempt;
                shutdown_worker(worker, /*kill=*/false);
                finalize(index, attempt, TrialStatus::kFailedCrash, kNaN);
                progressed = true;
                continue;
            }
            if (worker.has_deadline &&
                to_epoch_ns(Clock::now()) > worker.deadline_ns) {
                // A hung worker cannot be cancelled politely: SIGKILL it,
                // record the timeout, and respawn the slot on demand.
                const std::size_t index = worker.job_index;
                const std::uint64_t attempt = worker.job_attempt;
                shutdown_worker(worker, /*kill=*/true);
                finalize(index, attempt, TrialStatus::kFailedTimeout, kNaN);
                progressed = true;
            }
        }

        if (!progressed) {
            std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
    }
}

#else  // !BAYESFT_HAS_FORK

// Platforms without fork never reach the distributed path (the engine
// gates on its own fork check), but the pool must still link; a
// constructed pool degrades immediately and evaluates in-process.

WorkerPool::WorkerPool(Config config, PointEvaluator evaluator)
    : config_(std::move(config)), evaluator_(std::move(evaluator)) {
    degraded_ = true;
}

WorkerPool::~WorkerPool() = default;

bool WorkerPool::spawn_worker(std::size_t) { return false; }

void WorkerPool::shutdown_worker(Worker&, bool) {}

void WorkerPool::evaluate(const std::vector<Alpha>& points,
                          const std::vector<std::size_t>& live,
                          const EvalContext& context, BatchOutcome& outcome) {
    for (const std::size_t j : live) {
        const std::uint64_t cseed = candidate_seed(context, points[j]);
        const AttemptResult result = evaluate_with_retries(
            config_.chaos, config_.resilience, cseed, 0, [&] {
                Rng rng(cseed);
                return evaluator_(points[j], rng);
            });
        outcome.utilities[j] = result.utility;
        outcome.statuses[j] = result.status;
    }
}

#endif  // BAYESFT_HAS_FORK

}  // namespace bayesft::core
