#include "core/archsearch.hpp"

#include <algorithm>
#include <stdexcept>

#include "bayesopt/acquisition.hpp"
#include "core/engine.hpp"
#include "utils/logging.hpp"

namespace bayesft::core {

ArchSearchResult arch_search(const models::ArchFamily& family,
                             const data::Dataset& train_set,
                             const data::Dataset& validation_set,
                             const ArchSearchConfig& config, Rng& rng) {
    if (family.space.size() == 0 || !family.build) {
        throw std::invalid_argument(
            "arch_search: family needs a non-empty space and a builder");
    }
    if (config.iterations == 0) {
        throw std::invalid_argument("arch_search: zero iterations");
    }
    const ParamSpace& space = family.space;

    bayesopt::BayesOpt bo(
        space.encoded_bounds(),
        space.kernel(config.kernel_inverse_scale, config.hamming_weight),
        bayesopt::make_acquisition(config.acquisition), config.bo,
        rng.split(), space.projection());

    EvaluationEngine engine(EngineConfig{config.eval_threads, /*cache=*/true});
    // The context digests everything a candidate's utility depends on
    // besides its point: objective, space structure, training budget, and a
    // per-run nonce so two searches differing only in seed draw distinct
    // candidate streams.  The stamp stays 0 for the whole run — candidates
    // are built from scratch, so memoized utilities never go stale and
    // repeated proposals (common once integer/categorical snapping kicks
    // in) cost nothing.
    EvalContext context;
    context.key = objective_digest(config.objective);
    context.key = mix_key(context.key, space.digest());
    context.key = mix_key(context.key,
                          static_cast<std::uint64_t>(config.train.epochs));
    context.key = mix_key(context.key, rng());

    const PointEvaluator evaluator = [&](const Alpha& encoded, Rng& r) {
        const ParamPoint point = space.decode(encoded);
        models::ModelHandle model = family.build(space, point, r);
        nn::train_classifier(*model.net, train_set.images, train_set.labels,
                             config.train, r);
        return fault_utility(*model.net, validation_set.images,
                             validation_set.labels, config.objective, r);
    };

    const std::size_t q = std::max<std::size_t>(1, config.batch);
    std::size_t done = 0;
    while (done < config.iterations) {
        const std::size_t group = std::min(q, config.iterations - done);
        const std::vector<bayesopt::Point> encoded = bo.suggest_batch(group);
        const BatchOutcome outcome =
            engine.evaluate_points(encoded, evaluator, context);
        bo.observe_batch(encoded, outcome.utilities);
        for (std::size_t j = 0; j < group; ++j) {
            log_debug() << "arch_search trial " << (done + j) << " ["
                        << space.describe(space.decode(encoded[j])) << "] "
                        << "utility " << outcome.utilities[j];
        }
        done += group;
    }

    ArchSearchResult result;
    const auto best = bo.best();
    result.best_utility = best->y;
    result.best_point = space.decode(best->x);
    result.trials = bo.trials();
    result.trial_points.reserve(result.trials.size());
    for (const bayesopt::Trial& trial : result.trials) {
        result.trial_points.push_back(space.decode(trial.x));
    }
    result.engine_cache_hits = engine.cache_hits();

    // Re-materialize the winner on its original candidate stream: the same
    // derived seed replays build + training bit for bit, so the returned
    // model is exactly the candidate the GP scored.
    Rng winner_rng(candidate_seed(context, best->x));
    result.best_model = family.build(space, result.best_point, winner_rng);
    nn::train_classifier(*result.best_model.net, train_set.images,
                         train_set.labels, config.train, winner_rng);
    if (config.final_epochs > 0) {
        nn::TrainConfig final_config = config.train;
        final_config.epochs = config.final_epochs;
        nn::train_classifier(*result.best_model.net, train_set.images,
                             train_set.labels, final_config, rng);
    }
    return result;
}

}  // namespace bayesft::core
