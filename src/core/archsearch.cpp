#include "core/archsearch.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "bayesopt/acquisition.hpp"
#include "core/engine.hpp"
#include "utils/logging.hpp"

namespace bayesft::core {

namespace {

/// Everything that shapes the architecture search besides the RNG streams
/// (the space itself is validated separately via its own digest).
std::uint64_t archsearch_scenario_digest(const ArchSearchConfig& config,
                                         const RngState& entry) {
    std::uint64_t key = objective_digest(config.objective);
    key = mix_key(key, static_cast<std::uint64_t>(config.iterations));
    key = mix_key(key, static_cast<std::uint64_t>(config.final_epochs));
    key = mix_key(key, static_cast<std::uint64_t>(
                           std::max<std::size_t>(1, config.batch)));
    key = mix_key(key, std::string_view(config.acquisition));
    const double reals[] = {config.kernel_inverse_scale,
                            config.hamming_weight};
    key = mix_key(key, reals, 2);
    key = mix_bo_config(key, config.bo);
    key = mix_train_config(key, config.train);
    return mix_rng_state(key, entry);
}

}  // namespace

ArchSearchResult arch_search(const models::ArchFamily& family,
                             const data::Dataset& train_set,
                             const data::Dataset& validation_set,
                             const ArchSearchConfig& config, Rng& rng) {
    if (family.space.size() == 0 || !family.build) {
        throw std::invalid_argument(
            "arch_search: family needs a non-empty space and a builder");
    }
    if (config.iterations == 0) {
        throw std::invalid_argument("arch_search: zero iterations");
    }
    const ParamSpace& space = family.space;

    const std::uint64_t scenario_digest =
        archsearch_scenario_digest(config, rng.state());
    bayesopt::BayesOpt bo(
        space.encoded_bounds(),
        space.kernel(config.kernel_inverse_scale, config.hamming_weight),
        bayesopt::make_acquisition(config.acquisition), config.bo,
        rng.split(), space.projection());

    EngineConfig engine_config;
    engine_config.threads = config.eval_threads;
    engine_config.workers = config.workers;
    engine_config.resilience = config.resilience;
    EvaluationEngine engine(engine_config);
    // The context digests everything a candidate's utility depends on
    // besides its point: objective, space structure, training budget, and a
    // per-run nonce so two searches differing only in seed draw distinct
    // candidate streams.  The stamp stays 0 for the whole run — candidates
    // are built from scratch, so memoized utilities never go stale and
    // repeated proposals (common once integer/categorical snapping kicks
    // in) cost nothing.
    EvalContext context;
    std::size_t done = 0;
    std::size_t resumed = 0;
    if (config.checkpoint.enabled() &&
        checkpoint_exists(config.checkpoint.path)) {
        const SearchCheckpoint cp =
            load_checkpoint(config.checkpoint.path);
        validate_checkpoint(cp, space.digest(), scenario_digest,
                            config.checkpoint.path);
        if (cp.trials_done > config.iterations) {
            throw std::runtime_error(
                "checkpoint: " + config.checkpoint.path + " holds " +
                std::to_string(cp.trials_done) +
                " trials but the configured budget is " +
                std::to_string(config.iterations));
        }
        bo.import_state(cp.bo);
        rng.set_state(cp.run_rng);
        context.key = cp.context_key;
        context.stamp = cp.context_stamp;
        // Re-seed the memo cache: duplicate proposals after the resume are
        // as free as they were in the writing run.
        engine.import_cache(context, cp.cache);
        done = cp.trials_done;
        resumed = done;
        log_info() << "arch_search resumed from " << config.checkpoint.path
                   << " at trial " << done << "/" << config.iterations;
    } else {
        context.key = objective_digest(config.objective);
        context.key = mix_key(context.key, space.digest());
        context.key = mix_key(context.key,
                              static_cast<std::uint64_t>(
                                  config.train.epochs));
        context.key = mix_key(context.key, rng());
    }

    const PointEvaluator evaluator = [&](const Alpha& encoded, Rng& r) {
        const ParamPoint point = space.decode(encoded);
        models::ModelHandle model = family.build(space, point, r);
        nn::train_classifier(*model.net, train_set.images, train_set.labels,
                             config.train, r);
        return fault_utility(*model.net, validation_set.images,
                             validation_set.labels, config.objective, r);
    };

    const auto write_checkpoint = [&]() {
        SearchCheckpoint cp;
        cp.run_id = "arch_search:" + family.name;
        cp.build = build_stamp();
        cp.space_digest = space.digest();
        cp.scenario_digest = scenario_digest;
        cp.context_key = context.key;
        cp.context_stamp = context.stamp;
        cp.trials_done = done;
        cp.run_rng = rng.state();
        cp.bo = bo.export_state();
        cp.cache = engine.export_cache();
        save_checkpoint(cp, config.checkpoint.path);
    };

    const std::size_t q = std::max<std::size_t>(1, config.batch);
    std::size_t new_trials = 0;
    while (done < config.iterations) {
        const std::size_t group = std::min(q, config.iterations - done);
        const std::vector<bayesopt::Point> encoded = bo.suggest_batch(group);
        const BatchOutcome outcome =
            engine.evaluate_points(encoded, evaluator, context);
        bo.observe_batch(encoded, outcome.utilities, outcome.statuses);
        for (std::size_t j = 0; j < group; ++j) {
            log_debug() << "arch_search trial " << (done + j) << " ["
                        << space.describe(space.decode(encoded[j])) << "] "
                        << "utility " << outcome.utilities[j];
        }
        done += group;
        new_trials += group;
        if (config.checkpoint.enabled()) {
            write_checkpoint();
            if (config.checkpoint.stop_after != 0 &&
                new_trials >= config.checkpoint.stop_after &&
                done < config.iterations) {
                ArchSearchResult partial;
                const auto best = bo.best();
                partial.best_utility = best->y;
                partial.best_point = space.decode(best->x);
                partial.trials = bo.trials();
                partial.trial_points.reserve(partial.trials.size());
                for (const bayesopt::Trial& trial : partial.trials) {
                    partial.trial_points.push_back(space.decode(trial.x));
                }
                partial.engine_cache_hits = engine.cache_hits();
                partial.completed = false;
                partial.resumed_trials = resumed;
                return partial;
            }
        }
    }

    ArchSearchResult result;
    const auto best = bo.best();
    result.best_utility = best->y;
    result.best_point = space.decode(best->x);
    result.trials = bo.trials();
    result.trial_points.reserve(result.trials.size());
    for (const bayesopt::Trial& trial : result.trials) {
        result.trial_points.push_back(space.decode(trial.x));
    }
    result.engine_cache_hits = engine.cache_hits();
    result.resumed_trials = resumed;

    // Re-materialize the winner on its original candidate stream: the same
    // derived seed replays build + training bit for bit, so the returned
    // model is exactly the candidate the GP scored.
    Rng winner_rng(candidate_seed(context, best->x));
    result.best_model = family.build(space, result.best_point, winner_rng);
    nn::train_classifier(*result.best_model.net, train_set.images,
                         train_set.labels, config.train, winner_rng);
    if (config.final_epochs > 0) {
        nn::TrainConfig final_config = config.train;
        final_config.epochs = config.final_epochs;
        nn::train_classifier(*result.best_model.net, train_set.images,
                             train_set.labels, final_config, rng);
    }
    return result;
}

}  // namespace bayesft::core
