#pragma once
// Architecture search over a typed mixed space: the generalization of the
// paper's Algorithm 1 from a per-layer dropout vector to a full
// (continuous + integer + categorical) architecture space — normalization,
// activation, depth, widths, and dropout rates searched jointly instead of
// hand-enumerated as in Fig. 2.
//
// Protocol (one candidate): decode the proposed point, build a fresh model
// from the family's builder, train it for the per-candidate budget, and
// score the fault-marginalized utility (Eq. 4) on held-out data.  Unlike
// the dropout-only search there is no shared evolving theta — every
// candidate is self-contained — so the engine keeps its memoization cache
// valid for the whole run (duplicate proposals are free) and each
// candidate's RNG derives purely from (context, point), making results
// invariant to batch size grouping, thread count, and evaluation order.

#include <cstdint>
#include <string>
#include <vector>

#include "bayesopt/bayesopt.hpp"
#include "core/objective.hpp"
#include "core/param_space.hpp"
#include "core/persist.hpp"
#include "data/dataset.hpp"
#include "models/zoo.hpp"
#include "nn/trainer.hpp"

namespace bayesft::core {

/// Configuration of one architecture search.
struct ArchSearchConfig {
    /// Candidate evaluations (BO trials) in total.
    std::size_t iterations = 12;
    /// Per-candidate training budget (`train.epochs` epochs from scratch).
    nn::TrainConfig train;
    /// Monte-Carlo utility settings; `faults` selects the fault zoo.
    ObjectiveConfig objective;
    /// Acquisition rule.  Expected improvement by default: from-scratch
    /// candidates make the utility landscape multi-modal, where the paper's
    /// pure posterior-mean exploitation stalls in mixed spaces.
    std::string acquisition = "ei";
    /// ARD inverse length scale for numeric dims (ParamSpace::kernel).
    double kernel_inverse_scale = 4.0;
    /// Hamming penalty lambda for categorical mismatches.
    double hamming_weight = 1.0;
    /// GP/BO proposal settings.
    bayesopt::BayesOptConfig bo;
    /// Candidates proposed and evaluated per GP refit (q).
    std::size_t batch = 1;
    /// Concurrency of the candidate evaluations (0 = pool width).
    std::size_t eval_threads = 0;
    /// Distributed evaluation (docs/distributed.md): farm candidate
    /// evaluations to this many forked worker processes (0 = in-process).
    /// Result-invariant like eval_threads — the search outcome is
    /// bit-identical for every worker count — and therefore excluded from
    /// the scenario digest, so a run checkpointed at one worker count
    /// resumes exactly at another.
    std::size_t workers = 0;
    /// Fault-tolerant trial execution (docs/robustness.md).  Candidates
    /// are self-contained, so `isolate` forks each live evaluation into a
    /// crash-isolated child here; results are bit-identical with and
    /// without it (the knobs are excluded from the scenario digest).
    ResilienceConfig resilience;
    /// Extra fine-tuning epochs on the rebuilt winner.
    std::size_t final_epochs = 2;
    /// Checkpoint/resume controls (docs/checkpointing.md).  Candidates are
    /// self-contained, so the snapshot holds the BO state, the loop RNG,
    /// and the engine memo-cache entries (duplicate proposals stay free
    /// after a resume); there are no evolving weights to persist.
    CheckpointOptions checkpoint;
};

/// Outcome of a search.
struct ArchSearchResult {
    ParamPoint best_point;
    double best_utility = 0.0;
    /// Full BO history over the encoded view, plus the decoded points
    /// aligned with it.
    std::vector<bayesopt::Trial> trials;
    std::vector<ParamPoint> trial_points;
    /// The winner, re-materialized on its original candidate RNG stream
    /// (bit-identical weights to the evaluated candidate) and fine-tuned
    /// for `final_epochs`.
    models::ModelHandle best_model;
    /// Duplicate proposals served from the engine's memo cache.
    std::size_t engine_cache_hits = 0;
    /// False when the run halted at CheckpointOptions::stop_after before
    /// exhausting the trial budget; `best_model` is then empty (the winner
    /// is only materialized on completion — resume with the same path).
    bool completed = true;
    /// Trials restored from a checkpoint rather than evaluated here.
    std::size_t resumed_trials = 0;
};

/// Runs the mixed-space search for `family` on (train_set, validation_set).
/// Throws std::invalid_argument on an empty space/builder or zero
/// iterations.
ArchSearchResult arch_search(const models::ArchFamily& family,
                             const data::Dataset& train_set,
                             const data::Dataset& validation_set,
                             const ArchSearchConfig& config, Rng& rng);

}  // namespace bayesft::core
