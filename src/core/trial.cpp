#include "core/trial.hpp"

namespace bayesft {

const char* trial_status_name(TrialStatus status) {
    switch (status) {
        case TrialStatus::kOk: return "ok";
        case TrialStatus::kFailedNaN: return "failed_nan";
        case TrialStatus::kFailedCrash: return "failed_crash";
        case TrialStatus::kFailedTimeout: return "failed_timeout";
    }
    return "ok";
}

std::optional<TrialStatus> parse_trial_status(std::string_view name) {
    if (name == "ok") return TrialStatus::kOk;
    if (name == "failed_nan") return TrialStatus::kFailedNaN;
    if (name == "failed_crash") return TrialStatus::kFailedCrash;
    if (name == "failed_timeout") return TrialStatus::kFailedTimeout;
    return std::nullopt;
}

}  // namespace bayesft
