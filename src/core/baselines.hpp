#pragma once
// The four baselines the paper compares against (Sec. IV):
//   ERM      — plain empirical risk minimization.
//   ReRAM-V  — per-device diagnose-and-retrain (Chen et al. 2017): adapts
//              the weights to one observed drift pattern; generalizes poorly
//              to the fresh drift of the next device/moment.
//   AWP      — adversarial weight perturbation training (Wu et al. 2020).
//   FTNA     — fault-tolerant architecture via error-correction output
//              coding (Liu et al. 2019): the classifier emits a binary code
//              decoded by minimum Hamming distance against a codebook.

#include <vector>

#include "data/dataset.hpp"
#include "fault/drift.hpp"
#include "models/zoo.hpp"
#include "nn/trainer.hpp"

namespace bayesft::core {

// ---------------------------------------------------------------- ERM ----

/// Plain training with all dropout rates at zero.
void train_erm(models::ModelHandle& model, const data::Dataset& train_set,
               const nn::TrainConfig& config, Rng& rng);

// ----------------------------------------------------------- ReRAM-V ----

/// ReRAM-V settings.
struct ReRamVConfig {
    nn::TrainConfig pretrain;
    /// Fine-tuning epochs after diagnosing the device's drift pattern.
    std::size_t adapt_epochs = 2;
    /// Drift level of the diagnosed device.
    double device_sigma = 0.3;
};

/// Pretrains, then simulates the diagnose-and-retrain cycle: applies one
/// concrete drift realization (the "device") and fine-tunes on it.  The
/// resulting weights compensate that pattern only; evaluation under fresh
/// drift shows the scalability problem the paper describes.
void train_reram_v(models::ModelHandle& model, const data::Dataset& train_set,
                   const ReRamVConfig& config, Rng& rng);

// --------------------------------------------------------------- AWP ----

/// AWP settings.
struct AwpConfig {
    nn::TrainConfig train;
    /// Relative adversarial step: ||delta_w|| = gamma * ||w|| per tensor.
    double gamma = 0.02;
};

/// Adversarial weight perturbation training: each step first ascends the
/// loss in weight space (layer-normalized step of size gamma), computes the
/// gradient at the perturbed point, restores the weights and descends with
/// that gradient.
void train_awp(models::ModelHandle& model, const data::Dataset& train_set,
               const AwpConfig& config, Rng& rng);

// -------------------------------------------------------------- FTNA ----

/// FTNA error-correction output coding.
///
/// The wrapped model must have `code_bits` outputs (construct the zoo model
/// with classes == code_bits).  Codewords are random balanced binary codes,
/// one per class, drawn once at construction.
class FtnaClassifier {
public:
    FtnaClassifier(models::ModelHandle model, std::size_t num_classes,
                   std::size_t code_bits, Rng& rng);

    /// Trains the code-emitting network with elementwise BCE on codewords.
    void train(const data::Dataset& train_set, const nn::TrainConfig& config,
               Rng& rng);

    /// Accuracy by minimum-distance decoding of the emitted codes.
    double evaluate_accuracy(const Tensor& images,
                             const std::vector<int>& labels);

    nn::Module& network() { return *model_.net; }
    models::ModelHandle& handle() { return model_; }
    const std::vector<std::vector<float>>& codebook() const {
        return codebook_;
    }

private:
    models::ModelHandle model_;
    std::size_t num_classes_;
    std::size_t code_bits_;
    std::vector<std::vector<float>> codebook_;  // [classes][bits] in {0,1}
};

}  // namespace bayesft::core
