#include "core/registry.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "bayesopt/bayesopt.hpp"
#include "core/archsearch.hpp"
#include "core/baselines.hpp"
#include "core/bayesft.hpp"
#include "core/experiment.hpp"
#include "core/objective.hpp"
#include "data/digits.hpp"
#include "data/objects.hpp"
#include "data/pedestrians.hpp"
#include "data/toy.hpp"
#include "data/traffic_signs.hpp"
#include "detect/detector.hpp"
#include "fault/evaluator.hpp"
#include "fault/model.hpp"
#include "fault/zoo.hpp"
#include "models/zoo.hpp"
#include "nn/quant.hpp"
#include "nn/trainer.hpp"
#include "utils/stopwatch.hpp"

namespace bayesft::core {

ResultTable RegistryResult::to_table(const std::string& title,
                                     double scale) const {
    std::vector<std::string> columns{x_label};
    for (const NamedCurve& curve : curves) columns.push_back(curve.label);
    ResultTable table(title, columns);
    for (std::size_t i = 0; i < xs.size(); ++i) {
        std::vector<double> row{xs[i]};
        for (const NamedCurve& curve : curves) {
            row.push_back(curve.values[i] * scale);
        }
        table.add_row(row);
    }
    return table;
}

namespace {

std::size_t scaled(std::size_t full, bool quick) {
    return quick ? full / 4 : full;
}

/// RunOptions -> the engine's fault-tolerance knobs, shared by every
/// search-running scenario (docs/robustness.md).
ResilienceConfig resilience_from(const RunOptions& options) {
    ResilienceConfig resilience;
    resilience.isolate = options.isolate;
    resilience.timeout_seconds = options.trial_timeout;
    resilience.max_retries = options.max_retries;
    return resilience;
}

/// RunOptions -> how quarantined trials reach the GP.  The CLI validates
/// the string; anything unrecognized here falls back to the default.
FailPolicy fail_policy_from(const RunOptions& options) {
    return options.fail_policy == "exclude" ? FailPolicy::kExclude
                                            : FailPolicy::kPenalize;
}

/// Zips a BO trial history with its search-produced decoded-point strings
/// into run-store TrialRecords (the searches describe their own points via
/// ParamSpace::describe, so every store consumer formats them one way).
std::vector<TrialRecord> to_trial_records(
    const std::vector<bayesopt::Trial>& trials,
    const std::vector<std::string>& points) {
    std::vector<TrialRecord> records;
    records.reserve(trials.size());
    for (std::size_t i = 0; i < trials.size(); ++i) {
        records.push_back(
            {i, i < points.size() ? points[i] : std::string(),
             trials[i].y, trial_status_name(trials[i].status)});
    }
    return records;
}

/// The archsearch variant: describe the typed trial points on the fly.
std::vector<TrialRecord> arch_trial_records(
    const models::ArchFamily& family, const ArchSearchResult& search) {
    std::vector<std::string> points;
    points.reserve(search.trial_points.size());
    for (const ParamPoint& point : search.trial_points) {
        points.push_back(family.space.describe(point));
    }
    return to_trial_records(search.trials, points);
}

/// The Fig. 3 defaults the benches share (bench_common's
/// default_experiment_config, parameterized on quick mode), with the
/// engine knobs wired from RunOptions.
ExperimentConfig default_config(const RunOptions& options) {
    ExperimentConfig config;
    config.sigmas = {0.0, 0.3, 0.6, 0.9, 1.2, 1.5};
    config.eval_samples = options.quick ? 2 : 4;

    config.train.epochs = options.quick ? 2 : 8;
    config.train.batch_size = 32;
    config.train.learning_rate = 0.05;

    config.bayesft.iterations = options.quick ? 2 : 8;
    config.bayesft.epochs_per_iteration = options.quick ? 1 : 2;
    config.bayesft.train = config.train;
    config.bayesft.objective.sigmas = {0.3, 0.6, 0.9};
    config.bayesft.objective.mc_samples = options.quick ? 1 : 3;
    config.bayesft.warmup_epochs = options.quick ? 1 : 3;
    config.bayesft.final_epochs = options.quick ? 1 : 4;
    config.bayesft.max_dropout_rate = 0.5;
    config.bayesft.batch = std::max<std::size_t>(1, options.batch);
    config.bayesft.eval_threads = options.threads;
    config.bayesft.checkpoint.path = options.checkpoint;
    config.bayesft.checkpoint.stop_after = options.stop_after;
    config.bayesft.resilience = resilience_from(options);
    config.bayesft.bo.fail_policy = fail_policy_from(options);
    config.bayesft.bo.trust_region.enabled = options.trust_region;
    config.bayesft.bo.trust_region.activate_after = options.tr_after;

    config.reram_v.adapt_epochs = 2;
    config.reram_v.device_sigma = 0.3;
    config.awp.gamma = 0.02;
    config.ftna_code_bits = 16;
    if (options.seed != 0) config.seed = options.seed;
    return config;
}

RegistryResult from_experiment(const std::string& name,
                               const ExperimentResult& experiment) {
    RegistryResult result;
    result.experiment = name;
    result.x_label = "sigma";
    result.xs = experiment.sigmas;
    for (const MethodCurve& curve : experiment.curves) {
        result.curves.push_back({curve.method, curve.accuracy});
    }
    result.bayesft_alpha = experiment.bayesft_alpha;
    result.trials = to_trial_records(experiment.bayesft_trials,
                                     experiment.bayesft_trial_points);
    result.resumed_trials = experiment.bayesft_resumed;
    result.search_completed = experiment.bayesft_completed;
    return result;
}

// ------------------------------------------------ Fig. 2 ablations ----

struct Variant {
    std::string label;
    std::function<models::ModelHandle(Rng&)> make;
};

/// fig2_common's protocol: train every variant identically on synthetic
/// digits (ERM) and sweep the drift sigma.
RegistryResult run_variant_ablation(const std::string& name,
                                    const std::vector<Variant>& variants,
                                    const RunOptions& options) {
    Stopwatch watch;
    const std::uint64_t seed = options.seed;
    Rng data_rng(11 + seed);
    data::DigitConfig digit_config;
    digit_config.samples = scaled(1200, options.quick);
    digit_config.image_size = 16;
    const data::Dataset full = data::synthetic_digits(digit_config, data_rng);
    Rng split_rng(12 + seed);
    const data::TrainTestSplit parts = data::split(full, 0.25, split_rng);

    RegistryResult result;
    result.experiment = name;
    result.x_label = "sigma";
    result.xs = {0.0, 0.3, 0.6, 0.9, 1.2, 1.5};
    const std::size_t mc_samples = options.quick ? 2 : 5;

    for (std::size_t i = 0; i < variants.size(); ++i) {
        Rng rng(1000 + i + seed);
        models::ModelHandle model = variants[i].make(rng);
        nn::TrainConfig train_config;
        train_config.epochs = options.quick ? 3 : 10;
        nn::train_classifier(*model.net, parts.train.images,
                             parts.train.labels, train_config, rng);
        Rng eval_rng(2000 + i + seed);
        result.curves.push_back(
            {variants[i].label,
             fault::sigma_sweep(*model.net, parts.test.images,
                                parts.test.labels, result.xs, mc_samples,
                                eval_rng)});
    }
    result.seconds = watch.seconds();
    return result;
}

models::MlpOptions base_mlp_options() {
    models::MlpOptions options;
    options.input_features = 256;
    options.hidden = 64;
    options.hidden_layers = 2;
    return options;
}

RegistryResult run_fig2a(const RunOptions& options) {
    const models::MlpOptions base = base_mlp_options();
    std::vector<Variant> variants;
    variants.push_back({"Original", [base](Rng& rng) {
                            models::MlpOptions o = base;
                            o.dropout = models::DropoutKind::kNone;
                            return models::make_mlp(o, rng);
                        }});
    variants.push_back({"DropOut", [base](Rng& rng) {
                            models::MlpOptions o = base;
                            o.dropout = models::DropoutKind::kStandard;
                            o.initial_dropout_rate = 0.3;
                            return models::make_mlp(o, rng);
                        }});
    variants.push_back({"AlphaDropOut", [base](Rng& rng) {
                            models::MlpOptions o = base;
                            o.dropout = models::DropoutKind::kAlpha;
                            o.initial_dropout_rate = 0.3;
                            return models::make_mlp(o, rng);
                        }});
    return run_variant_ablation("fig2a_dropout", variants, options);
}

RegistryResult run_fig2b(const RunOptions& options) {
    auto norm_variant = [](const std::string& label, models::NormKind norm) {
        return Variant{label, [norm](Rng& rng) {
                           models::MlpOptions o = base_mlp_options();
                           o.dropout = models::DropoutKind::kNone;
                           o.norm = norm;
                           return models::make_mlp(o, rng);
                       }};
    };
    return run_variant_ablation(
        "fig2b_normalization",
        {norm_variant("WithoutNorm", models::NormKind::kNone),
         norm_variant("InstanceNorm", models::NormKind::kInstance),
         norm_variant("BatchNorm", models::NormKind::kBatch),
         norm_variant("GroupNorm", models::NormKind::kGroup),
         norm_variant("LayerNorm", models::NormKind::kLayer)},
        options);
}

RegistryResult run_fig2c(const RunOptions& options) {
    auto depth_variant = [](const std::string& label, std::size_t layers) {
        return Variant{label, [layers](Rng& rng) {
                           models::MlpOptions o = base_mlp_options();
                           o.hidden_layers = layers;
                           o.dropout = models::DropoutKind::kNone;
                           return models::make_mlp(o, rng);
                       }};
    };
    return run_variant_ablation("fig2c_depth",
                                {depth_variant("3-Layer", 2),
                                 depth_variant("6-Layer", 5),
                                 depth_variant("9-Layer", 8)},
                                options);
}

RegistryResult run_fig2d(const RunOptions& options) {
    auto act_variant = [](const std::string& label,
                          const std::string& activation) {
        return Variant{label, [activation](Rng& rng) {
                           models::MlpOptions o = base_mlp_options();
                           o.dropout = models::DropoutKind::kNone;
                           o.activation = activation;
                           return models::make_mlp(o, rng);
                       }};
    };
    return run_variant_ablation("fig2d_activation",
                                {act_variant("ReLU", "relu"),
                                 act_variant("ELU", "elu"),
                                 act_variant("GELU", "gelu"),
                                 act_variant("LeakyReLU", "leaky_relu")},
                                options);
}

// ------------------------------------------------- Fig. 3 panels ----

/// Shared body of the classification panels: synthesize the task with the
/// panel's historical seeds, run every enabled method, time it.
RegistryResult run_classification_panel(
    const std::string& name, const data::Dataset& full,
    std::uint64_t split_seed, const ModelFactory& factory,
    std::size_t num_classes, ExperimentConfig config) {
    Stopwatch watch;
    Rng split_rng(split_seed);
    const data::TrainTestSplit parts = data::split(full, 0.25, split_rng);
    RegistryResult result =
        from_experiment(name, run_classification_experiment(
                                  factory, parts.train, parts.test,
                                  num_classes, config));
    result.seconds = watch.seconds();
    return result;
}

data::Dataset digits_task(std::size_t samples, std::uint64_t seed,
                          const RunOptions& options) {
    Rng data_rng(seed + options.seed);
    data::DigitConfig config;
    config.samples = scaled(samples, options.quick);
    config.image_size = 16;
    return data::synthetic_digits(config, data_rng);
}

data::Dataset objects_task(std::size_t samples, std::uint64_t seed,
                           const RunOptions& options) {
    Rng data_rng(seed + options.seed);
    data::ObjectConfig config;
    config.samples = scaled(samples, options.quick);
    return data::synthetic_objects(config, data_rng);
}

RegistryResult run_fig3a(const RunOptions& options) {
    const ModelFactory factory = [](std::size_t outputs, Rng& rng) {
        models::MlpOptions o = base_mlp_options();
        o.classes = outputs;
        return models::make_mlp(o, rng);
    };
    return run_classification_panel(
        "fig3a_mlp_mnist", digits_task(1200, 31, options), 32 + options.seed,
        factory, 10, default_config(options));
}

RegistryResult run_fig3b(const RunOptions& options) {
    const ModelFactory factory = [](std::size_t outputs, Rng& rng) {
        return models::make_lenet5(1, 16, outputs, rng);
    };
    ExperimentConfig config = default_config(options);
    config.train.epochs = options.quick ? 3 : 12;
    config.train.learning_rate = 0.03;
    config.bayesft.train = config.train;
    return run_classification_panel("fig3b_lenet_mnist",
                                    digits_task(1000, 41, options),
                                    42 + options.seed, factory, 10, config);
}

ExperimentConfig conv_config(const RunOptions& options) {
    ExperimentConfig config = default_config(options);
    config.train.learning_rate = 0.02;
    config.bayesft.train = config.train;
    return config;
}

RegistryResult run_fig3c(const RunOptions& options) {
    const ModelFactory factory = [](std::size_t outputs, Rng& rng) {
        return models::make_alexnet_s(outputs, rng);
    };
    return run_classification_panel(
        "fig3c_alexnet_cifar", objects_task(1000, 51, options),
        52 + options.seed, factory, 10, conv_config(options));
}

RegistryResult run_fig3d(const RunOptions& options) {
    const ModelFactory factory = [](std::size_t outputs, Rng& rng) {
        return models::make_resnet18_s(outputs, rng);
    };
    return run_classification_panel(
        "fig3d_resnet_cifar", objects_task(800, 61, options),
        62 + options.seed, factory, 10, conv_config(options));
}

RegistryResult run_fig3e(const RunOptions& options) {
    const ModelFactory factory = [](std::size_t outputs, Rng& rng) {
        return models::make_vgg11_s(outputs, rng);
    };
    return run_classification_panel(
        "fig3e_vgg_cifar", objects_task(800, 71, options),
        72 + options.seed, factory, 10, conv_config(options));
}

/// Depth sweep panels run ERM + BayesFT per depth (the panel's message is
/// the depth/robustness interaction, not the full baseline zoo).
RegistryResult run_preact_depth(const std::string& name, std::size_t blocks,
                                const RunOptions& options) {
    const ModelFactory factory = [blocks](std::size_t outputs, Rng& rng) {
        return models::make_preact_resnet_s(blocks, outputs, rng);
    };
    ExperimentConfig config = conv_config(options);
    config.methods.ftna = false;
    config.methods.reram_v = false;
    config.methods.awp = false;
    return run_classification_panel(name, objects_task(800, 81, options),
                                    82 + options.seed, factory, 10, config);
}

RegistryResult run_fig3i(const RunOptions& options) {
    Rng data_rng(91 + options.seed);
    data::TrafficSignConfig sign_config;
    sign_config.samples = scaled(2150, options.quick);
    const data::Dataset full =
        data::synthetic_traffic_signs(sign_config, data_rng);
    const ModelFactory factory = [](std::size_t outputs, Rng& rng) {
        return models::make_stn_classifier(outputs, rng);
    };
    ExperimentConfig config = conv_config(options);
    config.methods.ftna = false;  // per the paper
    return run_classification_panel("fig3i_gtsrb", full, 92 + options.seed,
                                    factory, 43, config);
}

/// CI-sized toy scenario: 3-class blobs, tiny MLP, ERM vs BayesFT only.
RegistryResult run_toy(const RunOptions& options) {
    Rng data_rng(1 + options.seed);
    const data::Dataset full = data::make_blobs(
        options.quick ? 300 : 600, 3, 4.0, 0.6, data_rng);
    const ModelFactory factory = [](std::size_t outputs, Rng& rng) {
        models::MlpOptions o;
        o.input_features = 2;
        o.hidden = 24;
        o.hidden_layers = 2;
        o.classes = outputs;
        return models::make_mlp(o, rng);
    };
    ExperimentConfig config = default_config(options);
    config.sigmas = {0.0, 0.6, 1.2};
    config.train.epochs = options.quick ? 4 : 8;
    // 4 iterations even in quick mode so a --batch 4 smoke run (CI) forms
    // one genuinely 4-wide candidate batch.
    config.bayesft.iterations = 4;
    config.bayesft.train = config.train;
    config.methods.ftna = false;
    config.methods.reram_v = false;
    config.methods.awp = false;
    return run_classification_panel("toy_mlp_blobs", full, 2 + options.seed,
                                    factory, 3, config);
}

// -------------------------------------------- Fig. 3(j) detection ----

struct DetectionData {
    Tensor train_images;
    std::vector<std::vector<detect::Box>> train_boxes;
    Tensor val_images;
    std::vector<std::vector<detect::Box>> val_boxes;
    Tensor test_images;
    std::vector<std::vector<detect::Box>> test_boxes;
};

DetectionData make_detection_data(const RunOptions& options) {
    Rng rng(101 + options.seed);
    data::PedestrianConfig config;
    config.samples = options.quick ? 120 : 360;
    const data::DetectionDataset scenes =
        data::synthetic_pedestrians(config, rng);

    const std::size_t n = scenes.size();
    const std::size_t row = scenes.images.size() / n;
    const std::size_t train_n = n * 6 / 10;
    const std::size_t val_n = n * 2 / 10;
    auto slice = [&](std::size_t lo, std::size_t hi, Tensor& images,
                     std::vector<std::vector<detect::Box>>& boxes) {
        std::vector<std::size_t> shape = scenes.images.shape();
        shape[0] = hi - lo;
        images = Tensor(shape);
        std::copy_n(scenes.images.data() + lo * row, (hi - lo) * row,
                    images.data());
        boxes.assign(scenes.boxes.begin() + static_cast<std::ptrdiff_t>(lo),
                     scenes.boxes.begin() + static_cast<std::ptrdiff_t>(hi));
    };
    DetectionData data;
    slice(0, train_n, data.train_images, data.train_boxes);
    slice(train_n, train_n + val_n, data.val_images, data.val_boxes);
    slice(train_n + val_n, n, data.test_images, data.test_boxes);
    return data;
}

double map_under_fault(detect::GridDetector& detector, const Tensor& images,
                       const std::vector<std::vector<detect::Box>>& boxes,
                       const fault::FaultModel& fault, std::size_t samples,
                       Rng& rng) {
    return fault::evaluate_metric_under_faults(
               detector.network(), fault, samples, rng,
               [&](nn::Module& m) {
                   return detector.evaluate_map_with(m, images, boxes);
               },
               0)
        .mean_accuracy;
}

double map_under_drift(detect::GridDetector& detector, const Tensor& images,
                       const std::vector<std::vector<detect::Box>>& boxes,
                       double sigma, std::size_t samples, Rng& rng) {
    return map_under_fault(detector, images, boxes,
                           fault::LogNormalDrift(sigma), samples, rng);
}

/// Algorithm 1 applied to the detector: alternate short training runs with
/// BO updates on the per-stage dropout rates, utility = drift-averaged mAP.
void bayesft_detector_search(detect::GridDetector& detector,
                             const DetectionData& data,
                             const RunOptions& options, Rng& rng) {
    const std::size_t dims = detector.dropout_sites().size();
    bayesopt::BayesOptConfig bo_config;
    bo_config.initial_random_trials = 3;
    bayesopt::BayesOpt bo(
        bayesopt::BoxBounds::uniform(dims, 0.0, 0.6),
        std::make_shared<bayesopt::ArdSquaredExponential>(dims, 4.0),
        std::make_unique<bayesopt::PosteriorMean>(), bo_config, rng.split());

    detect::DetectorTrainConfig step;
    step.epochs = options.quick ? 4 : 10;
    const std::size_t iterations = options.quick ? 3 : 7;
    const std::size_t mc_samples = options.quick ? 1 : 2;

    for (std::size_t t = 0; t < iterations; ++t) {
        const bayesopt::Point alpha = bo.suggest();
        for (std::size_t i = 0; i < dims; ++i) {
            detector.dropout_sites()[i]->set_rate(alpha[i]);
        }
        detector.train(data.train_images, data.train_boxes, step, rng);
        double utility = 0.0;
        for (double sigma : {0.2, 0.4}) {
            utility += map_under_drift(detector, data.val_images,
                                       data.val_boxes, sigma, mc_samples,
                                       rng);
        }
        bo.observe(alpha, utility / 2.0);
    }
    const auto best = bo.best();
    for (std::size_t i = 0; i < dims; ++i) {
        detector.dropout_sites()[i]->set_rate(best->x[i]);
    }
    detector.train(data.train_images, data.train_boxes, step, rng);
}

RegistryResult run_fig3j(const RunOptions& options) {
    Stopwatch watch;
    const DetectionData data = make_detection_data(options);
    const std::vector<double> sigmas{0.0, 0.2, 0.4, 0.6, 0.8};
    const std::size_t eval_samples = options.quick ? 2 : 4;

    Rng erm_rng(111 + options.seed);
    detect::GridDetectorConfig detector_config;
    detect::GridDetector erm(detector_config, erm_rng);
    detect::DetectorTrainConfig train_config;
    train_config.epochs = options.quick ? 15 : 60;
    erm.train(data.train_images, data.train_boxes, train_config, erm_rng);

    Rng bft_rng(112 + options.seed);
    detect::GridDetector bft(detector_config, bft_rng);
    bayesft_detector_search(bft, data, options, bft_rng);

    RegistryResult result;
    result.experiment = "fig3j_detection";
    result.x_label = "sigma";
    result.xs = sigmas;
    NamedCurve erm_curve{"ERM mAP", {}};
    NamedCurve bft_curve{"BayesFT mAP", {}};
    Rng eval_rng(113 + options.seed);
    for (double sigma : sigmas) {
        erm_curve.values.push_back(
            map_under_drift(erm, data.test_images, data.test_boxes, sigma,
                            eval_samples, eval_rng));
        bft_curve.values.push_back(
            map_under_drift(bft, data.test_images, data.test_boxes, sigma,
                            eval_samples, eval_rng));
    }
    result.curves.push_back(std::move(erm_curve));
    result.curves.push_back(std::move(bft_curve));
    result.seconds = watch.seconds();
    return result;
}

// ---------------------------------------------- fault-model zoo ----
// Variants of the paper's panels under the non-drift members of the
// FaultModel zoo (stuck-at, bit-flip, variation, quantization, composed
// deployment chains).  Family "faults"; documented in docs/fault-models.md
// and docs/experiments.md.

/// Builds one fault scenario at sweep level `level` (the meaning of the
/// level — fraction, flip probability, sigma, bits — is the factory's).
using FaultFactory =
    std::function<std::unique_ptr<fault::FaultModel>(double level)>;

/// fig2a-style protocol under an arbitrary fault family: train the
/// no-dropout and dropout MLP variants once on synthetic digits, then
/// sweep the fault level instead of the drift sigma.
RegistryResult run_fault_sweep(const std::string& name,
                               const std::string& x_label,
                               std::vector<double> levels,
                               const FaultFactory& make_fault,
                               const RunOptions& options) {
    Stopwatch watch;
    const std::uint64_t seed = options.seed;
    Rng data_rng(151 + seed);
    data::DigitConfig digit_config;
    digit_config.samples = scaled(1200, options.quick);
    digit_config.image_size = 16;
    const data::Dataset full = data::synthetic_digits(digit_config, data_rng);
    Rng split_rng(152 + seed);
    const data::TrainTestSplit parts = data::split(full, 0.25, split_rng);

    const models::MlpOptions base = base_mlp_options();
    std::vector<Variant> variants;
    variants.push_back({"Original", [base](Rng& rng) {
                            models::MlpOptions o = base;
                            o.dropout = models::DropoutKind::kNone;
                            return models::make_mlp(o, rng);
                        }});
    variants.push_back({"DropOut", [base](Rng& rng) {
                            models::MlpOptions o = base;
                            o.dropout = models::DropoutKind::kStandard;
                            o.initial_dropout_rate = 0.3;
                            return models::make_mlp(o, rng);
                        }});

    RegistryResult result;
    result.experiment = name;
    result.x_label = x_label;
    result.xs = std::move(levels);
    const std::size_t mc_samples = options.quick ? 2 : 5;
    for (std::size_t i = 0; i < variants.size(); ++i) {
        Rng rng(3000 + i + seed);
        models::ModelHandle model = variants[i].make(rng);
        nn::TrainConfig train_config;
        train_config.epochs = options.quick ? 3 : 10;
        nn::train_classifier(*model.net, parts.train.images,
                             parts.train.labels, train_config, rng);
        NamedCurve curve{variants[i].label, {}};
        Rng eval_rng(4000 + i + seed);
        for (double level : result.xs) {
            const std::unique_ptr<fault::FaultModel> fault =
                make_fault(level);
            curve.values.push_back(
                fault::evaluate_under_faults(*model.net, parts.test.images,
                                             parts.test.labels, *fault,
                                             mc_samples, eval_rng)
                    .mean_accuracy);
        }
        result.curves.push_back(std::move(curve));
    }
    result.seconds = watch.seconds();
    return result;
}

/// fig3a-style protocol under an arbitrary fault family: ERM vs BayesFT
/// where the search's utility marginalizes over `search_levels` of the
/// same family (ObjectiveConfig::faults), then both models sweep `levels`.
RegistryResult run_fault_search(const std::string& name,
                                const std::string& x_label,
                                std::vector<double> levels,
                                const std::vector<double>& search_levels,
                                const FaultFactory& make_fault,
                                const RunOptions& options) {
    Stopwatch watch;
    const std::uint64_t seed = options.seed;
    Rng data_rng(161 + seed);
    data::DigitConfig digit_config;
    digit_config.samples = scaled(800, options.quick);
    digit_config.image_size = 16;
    const data::Dataset full = data::synthetic_digits(digit_config, data_rng);
    Rng split_rng(162 + seed);
    const data::TrainTestSplit parts = data::split(full, 0.25, split_rng);

    Rng erm_rng(163 + seed);
    models::ModelHandle erm = models::make_mlp(base_mlp_options(), erm_rng);
    nn::TrainConfig train_config;
    train_config.epochs = options.quick ? 3 : 8;
    nn::train_classifier(*erm.net, parts.train.images, parts.train.labels,
                         train_config, erm_rng);

    Rng bft_rng(164 + seed);
    models::ModelHandle bft = models::make_mlp(base_mlp_options(), bft_rng);
    BayesFTConfig config;
    config.iterations = options.quick ? 2 : 6;
    config.epochs_per_iteration = 1;
    config.objective.mc_samples = options.quick ? 1 : 2;
    for (double level : search_levels) {
        config.objective.faults.push_back(make_fault(level));
    }
    config.warmup_epochs = options.quick ? 1 : 2;
    config.final_epochs = options.quick ? 1 : 2;
    config.max_dropout_rate = 0.5;
    config.batch = std::max<std::size_t>(1, options.batch);
    config.eval_threads = options.threads;
    config.checkpoint.path = options.checkpoint;
    config.checkpoint.stop_after = options.stop_after;
    config.resilience = resilience_from(options);
    config.bo.fail_policy = fail_policy_from(options);
    config.bo.trust_region.enabled = options.trust_region;
    config.bo.trust_region.activate_after = options.tr_after;
    const BayesFTResult search =
        bayesft_search(bft, parts.train, parts.test, config, bft_rng);

    RegistryResult result;
    result.experiment = name;
    result.x_label = x_label;
    result.trials = to_trial_records(search.trials, search.trial_points);
    result.resumed_trials = search.resumed_trials;
    result.search_completed = search.completed;
    if (!search.completed) {
        // Checkpointed out at stop_after: the trial log is the result.
        result.seconds = watch.seconds();
        return result;
    }
    result.xs = std::move(levels);
    result.bayesft_alpha = search.best_alpha;
    NamedCurve erm_curve{"ERM", {}};
    NamedCurve bft_curve{"BayesFT", {}};
    const std::size_t mc_samples = options.quick ? 2 : 4;
    Rng eval_rng(165 + seed);
    for (double level : result.xs) {
        const std::unique_ptr<fault::FaultModel> fault = make_fault(level);
        erm_curve.values.push_back(
            fault::evaluate_under_faults(*erm.net, parts.test.images,
                                         parts.test.labels, *fault,
                                         mc_samples, eval_rng)
                .mean_accuracy);
        bft_curve.values.push_back(
            fault::evaluate_under_faults(*bft.net, parts.test.images,
                                         parts.test.labels, *fault,
                                         mc_samples, eval_rng)
                .mean_accuracy);
    }
    result.curves.push_back(std::move(erm_curve));
    result.curves.push_back(std::move(bft_curve));
    result.seconds = watch.seconds();
    return result;
}

/// fig3j-style detection variant: grid-detector mAP vs device-variation
/// level, plain training vs a fixed-dropout detector (no search — the
/// panel's message is that the fault layer generalizes to detection).
RegistryResult run_fault_detection(const RunOptions& options) {
    Stopwatch watch;
    const std::uint64_t seed = options.seed;
    Rng rng(171 + seed);
    data::PedestrianConfig config;
    config.samples = options.quick ? 64 : 240;
    const data::DetectionDataset scenes =
        data::synthetic_pedestrians(config, rng);

    const std::size_t n = scenes.size();
    const std::size_t row = scenes.images.size() / n;
    const std::size_t train_n = n * 7 / 10;
    auto slice = [&](std::size_t lo, std::size_t hi, Tensor& images,
                     std::vector<std::vector<detect::Box>>& boxes) {
        std::vector<std::size_t> shape = scenes.images.shape();
        shape[0] = hi - lo;
        images = Tensor(shape);
        std::copy_n(scenes.images.data() + lo * row, (hi - lo) * row,
                    images.data());
        boxes.assign(scenes.boxes.begin() + static_cast<std::ptrdiff_t>(lo),
                     scenes.boxes.begin() + static_cast<std::ptrdiff_t>(hi));
    };
    Tensor train_images, test_images;
    std::vector<std::vector<detect::Box>> train_boxes, test_boxes;
    slice(0, train_n, train_images, train_boxes);
    slice(train_n, n, test_images, test_boxes);

    detect::DetectorTrainConfig train_config;
    train_config.epochs = options.quick ? 10 : 40;

    Rng erm_rng(172 + seed);
    detect::GridDetectorConfig detector_config;
    detect::GridDetector erm(detector_config, erm_rng);
    erm.train(train_images, train_boxes, train_config, erm_rng);

    Rng drop_rng(173 + seed);
    detect::GridDetector dropped(detector_config, drop_rng);
    for (auto* site : dropped.dropout_sites()) site->set_rate(0.15);
    dropped.train(train_images, train_boxes, train_config, drop_rng);

    RegistryResult result;
    result.experiment = "faults_fig3j_variation";
    result.x_label = "sigma";
    result.xs = {0.0, 0.2, 0.4, 0.6};
    NamedCurve erm_curve{"ERM mAP", {}};
    NamedCurve drop_curve{"DropOut-0.15 mAP", {}};
    const std::size_t mc_samples = options.quick ? 2 : 4;
    Rng eval_rng(174 + seed);
    for (double sigma : result.xs) {
        const fault::GaussianVariationFault variation(sigma);
        erm_curve.values.push_back(map_under_fault(
            erm, test_images, test_boxes, variation, mc_samples, eval_rng));
        drop_curve.values.push_back(
            map_under_fault(dropped, test_images, test_boxes, variation,
                            mc_samples, eval_rng));
    }
    result.curves.push_back(std::move(erm_curve));
    result.curves.push_back(std::move(drop_curve));
    result.seconds = watch.seconds();
    return result;
}

/// Composed deployment chain: quantize(8b) -> device variation -> drift,
/// matching a real memristor deployment, against drift alone on the same
/// trained dropout MLP.
RegistryResult run_composed_deploy(const RunOptions& options) {
    Stopwatch watch;
    const std::uint64_t seed = options.seed;
    Rng data_rng(181 + seed);
    data::DigitConfig digit_config;
    digit_config.samples = scaled(1000, options.quick);
    digit_config.image_size = 16;
    const data::Dataset full = data::synthetic_digits(digit_config, data_rng);
    Rng split_rng(182 + seed);
    const data::TrainTestSplit parts = data::split(full, 0.25, split_rng);

    Rng rng(183 + seed);
    models::MlpOptions model_options = base_mlp_options();
    model_options.dropout = models::DropoutKind::kStandard;
    model_options.initial_dropout_rate = 0.3;
    models::ModelHandle model = models::make_mlp(model_options, rng);
    nn::TrainConfig train_config;
    train_config.epochs = options.quick ? 3 : 10;
    nn::train_classifier(*model.net, parts.train.images, parts.train.labels,
                         train_config, rng);

    RegistryResult result;
    result.experiment = "faults_composed_deploy";
    result.x_label = "sigma";
    result.xs = {0.0, 0.3, 0.6, 0.9};
    NamedCurve drift_curve{"Drift", {}};
    NamedCurve deploy_curve{"Quant8+Var+Drift", {}};
    const std::size_t mc_samples = options.quick ? 2 : 5;
    Rng eval_rng(184 + seed);
    for (double sigma : result.xs) {
        drift_curve.values.push_back(
            fault::evaluate_under_faults(*model.net, parts.test.images,
                                         parts.test.labels,
                                         fault::LogNormalDrift(sigma),
                                         mc_samples, eval_rng)
                .mean_accuracy);
        std::vector<std::unique_ptr<fault::FaultModel>> stages;
        stages.push_back(std::make_unique<fault::QuantizationFault>(8));
        stages.push_back(
            std::make_unique<fault::GaussianVariationFault>(0.2));
        stages.push_back(std::make_unique<fault::LogNormalDrift>(sigma));
        const fault::ComposedFault deploy(std::move(stages));
        deploy_curve.values.push_back(
            fault::evaluate_under_faults(*model.net, parts.test.images,
                                         parts.test.labels, deploy,
                                         mc_samples, eval_rng)
                .mean_accuracy);
    }
    result.curves.push_back(std::move(drift_curve));
    result.curves.push_back(std::move(deploy_curve));
    result.seconds = watch.seconds();
    return result;
}

/// Fixed-point inference mode (nn/quant.hpp): the same trained dropout MLP
/// swept across drift levels with the float32 forward and with the int8
/// (default; --inference int12 switches the width) integer forward.  The
/// gap between the curves is the cost of deploying the network through
/// b-bit DAC words on top of drift.
RegistryResult run_fixed_point_inference(const RunOptions& options) {
    Stopwatch watch;
    const std::uint64_t seed = options.seed;
    nn::InferenceMode mode = nn::parse_inference_mode(options.inference);
    if (mode == nn::InferenceMode::kFloat32) {
        mode = nn::InferenceMode::kInt8;  // the scenario's default width
    }

    Rng data_rng(191 + seed);
    data::DigitConfig digit_config;
    digit_config.samples = scaled(1000, options.quick);
    digit_config.image_size = 16;
    const data::Dataset full = data::synthetic_digits(digit_config, data_rng);
    Rng split_rng(192 + seed);
    const data::TrainTestSplit parts = data::split(full, 0.25, split_rng);

    Rng rng(193 + seed);
    models::MlpOptions model_options = base_mlp_options();
    model_options.dropout = models::DropoutKind::kStandard;
    model_options.initial_dropout_rate = 0.3;
    models::ModelHandle model = models::make_mlp(model_options, rng);
    nn::TrainConfig train_config;
    train_config.epochs = options.quick ? 3 : 10;
    nn::train_classifier(*model.net, parts.train.images, parts.train.labels,
                         train_config, rng);

    RegistryResult result;
    result.experiment = "faults_int8_inference";
    result.x_label = "sigma";
    result.xs = {0.0, 0.3, 0.6, 0.9};
    result.annotation =
        std::string("fixed-point mode: ") + nn::inference_mode_name(mode);
    NamedCurve float_curve{"Float32 fwd", {}};
    NamedCurve fixed_curve{
        std::string(nn::inference_mode_name(mode)) + " fwd", {}};
    const std::size_t mc_samples = options.quick ? 2 : 5;
    Rng eval_rng(194 + seed);
    for (double sigma : result.xs) {
        const fault::LogNormalDrift drift(sigma);
        float_curve.values.push_back(
            fault::evaluate_under_faults(*model.net, parts.test.images,
                                         parts.test.labels, drift,
                                         mc_samples, eval_rng)
                .mean_accuracy);
        const nn::ScopedInferenceMode scoped(*model.net, mode);
        fixed_curve.values.push_back(
            fault::evaluate_under_faults(*model.net, parts.test.images,
                                         parts.test.labels, drift,
                                         mc_samples, eval_rng)
                .mean_accuracy);
    }
    result.curves.push_back(std::move(float_curve));
    result.curves.push_back(std::move(fixed_curve));
    result.seconds = watch.seconds();
    return result;
}

/// DAC'12-profile deployment: the fault::dac12_deploy chain (12-bit
/// quantization -> variation -> drift) swept over drift, scored once with
/// the float32 forward and once with the matching int12 fixed-point
/// forward — the self-consistent "weights and arithmetic share the 12-bit
/// grid" deployment view.
RegistryResult run_dac12_deploy(const RunOptions& options) {
    Stopwatch watch;
    const std::uint64_t seed = options.seed;
    Rng data_rng(201 + seed);
    data::DigitConfig digit_config;
    digit_config.samples = scaled(1000, options.quick);
    digit_config.image_size = 16;
    const data::Dataset full = data::synthetic_digits(digit_config, data_rng);
    Rng split_rng(202 + seed);
    const data::TrainTestSplit parts = data::split(full, 0.25, split_rng);

    Rng rng(203 + seed);
    models::MlpOptions model_options = base_mlp_options();
    model_options.dropout = models::DropoutKind::kStandard;
    model_options.initial_dropout_rate = 0.3;
    models::ModelHandle model = models::make_mlp(model_options, rng);
    nn::TrainConfig train_config;
    train_config.epochs = options.quick ? 3 : 10;
    nn::train_classifier(*model.net, parts.train.images, parts.train.labels,
                         train_config, rng);

    RegistryResult result;
    result.experiment = "faults_dac12_deploy";
    result.x_label = "sigma";
    result.xs = {0.0, 0.3, 0.6, 0.9};
    NamedCurve float_curve{"DAC12 chain, float32 fwd", {}};
    NamedCurve fixed_curve{"DAC12 chain, int12 fwd", {}};
    const std::size_t mc_samples = options.quick ? 2 : 5;
    Rng eval_rng(204 + seed);
    for (double sigma : result.xs) {
        const std::unique_ptr<fault::FaultModel> deploy =
            fault::dac12_deploy(sigma);
        float_curve.values.push_back(
            fault::evaluate_under_faults(*model.net, parts.test.images,
                                         parts.test.labels, *deploy,
                                         mc_samples, eval_rng)
                .mean_accuracy);
        const nn::ScopedInferenceMode scoped(*model.net,
                                             nn::InferenceMode::kInt12);
        fixed_curve.values.push_back(
            fault::evaluate_under_faults(*model.net, parts.test.images,
                                         parts.test.labels, *deploy,
                                         mc_samples, eval_rng)
                .mean_accuracy);
    }
    result.curves.push_back(std::move(float_curve));
    result.curves.push_back(std::move(fixed_curve));
    result.seconds = watch.seconds();
    return result;
}

// ------------------------------------------- archsearch scenarios ----
// Typed mixed-space architecture search (core::arch_search): the axes
// Fig. 2 enumerates by hand — normalization, depth, activation — plus
// widths and pooling become searchable dimensions next to the dropout
// rates, under drift or any fault-zoo configuration.  Each scenario
// compares the searched architecture against the family's fixed default
// trained with the same ERM budget.

/// Shared sweep: evaluate `net` across fault levels built by `make_fault`.
std::vector<double> fault_level_sweep(nn::Module& net,
                                      const data::Dataset& test,
                                      const std::vector<double>& levels,
                                      const FaultFactory& make_fault,
                                      std::size_t mc_samples, Rng& rng) {
    std::vector<double> values;
    values.reserve(levels.size());
    for (double level : levels) {
        const std::unique_ptr<fault::FaultModel> fault = make_fault(level);
        values.push_back(fault::evaluate_under_faults(net, test.images,
                                                      test.labels, *fault,
                                                      mc_samples, rng)
                             .mean_accuracy);
    }
    return values;
}

/// Shared body of the archsearch scenarios: search `family` on a dataset,
/// train the fixed `baseline` with a comparable ERM budget, and sweep both
/// final models across `levels` of the `make_fault` family.
RegistryResult run_archsearch(
    const std::string& name, const data::Dataset& full,
    const models::ArchFamily& family,
    const std::function<models::ModelHandle(Rng&)>& baseline,
    const std::string& x_label, std::vector<double> levels,
    const FaultFactory& make_fault, ArchSearchConfig search_config,
    const RunOptions& options, std::uint64_t seed_base) {
    Stopwatch watch;
    const std::uint64_t seed = options.seed;
    Rng split_rng(seed_base + seed);
    const data::TrainTestSplit parts = data::split(full, 0.25, split_rng);

    search_config.batch = std::max<std::size_t>(1, options.batch);
    search_config.eval_threads = options.threads;
    search_config.workers = options.workers;
    search_config.checkpoint.path = options.checkpoint;
    search_config.checkpoint.stop_after = options.stop_after;
    search_config.resilience = resilience_from(options);
    search_config.bo.fail_policy = fail_policy_from(options);
    search_config.bo.trust_region.enabled = options.trust_region;
    search_config.bo.trust_region.activate_after = options.tr_after;
    Rng search_rng(seed_base + 1 + seed);
    const ArchSearchResult search = arch_search(
        family, parts.train, parts.test, search_config, search_rng);

    if (!search.completed) {
        RegistryResult partial;
        partial.experiment = name;
        partial.x_label = x_label;
        partial.trials = arch_trial_records(family, search);
        partial.resumed_trials = search.resumed_trials;
        partial.search_completed = false;
        partial.seconds = watch.seconds();
        return partial;
    }

    Rng baseline_rng(seed_base + 2 + seed);
    models::ModelHandle erm = baseline(baseline_rng);
    nn::TrainConfig erm_train = search_config.train;
    // Same total budget as one candidate plus the winner's fine-tuning.
    erm_train.epochs =
        search_config.train.epochs + search_config.final_epochs;
    nn::train_classifier(*erm.net, parts.train.images, parts.train.labels,
                         erm_train, baseline_rng);

    RegistryResult result;
    result.experiment = name;
    result.x_label = x_label;
    result.xs = std::move(levels);
    // The decoded point is the result of record; bayesft_alpha stays empty
    // (it means per-site dropout rates, not encoded mixed coordinates).
    result.annotation = family.space.describe(search.best_point);
    result.trials = arch_trial_records(family, search);
    result.resumed_trials = search.resumed_trials;
    const std::size_t mc_samples = options.quick ? 2 : 4;
    Rng eval_rng(seed_base + 3 + seed);
    result.curves.push_back(
        {"ERM-default",
         fault_level_sweep(*erm.net, parts.test, result.xs, make_fault,
                           mc_samples, eval_rng)});
    result.curves.push_back(
        {"ArchSearch",
         fault_level_sweep(*search.best_model.net, parts.test, result.xs,
                           make_fault, mc_samples, eval_rng)});
    result.seconds = watch.seconds();
    return result;
}

ArchSearchConfig default_archsearch_config(const RunOptions& options) {
    ArchSearchConfig config;
    config.iterations = options.quick ? 4 : 12;
    config.train.epochs = options.quick ? 2 : 5;
    config.train.batch_size = 32;
    config.train.learning_rate = 0.05;
    config.objective.sigmas = {0.3, 0.6, 0.9};
    config.objective.mc_samples = options.quick ? 1 : 2;
    config.bo.initial_random_trials = options.quick ? 2 : 5;
    config.final_epochs = options.quick ? 1 : 3;
    return config;
}

/// fig2b/c/d axes searched jointly: MLP norm x activation x depth x
/// per-layer dropout under drift, on synthetic digits.
RegistryResult run_archsearch_mlp(const RunOptions& options) {
    Rng data_rng(191 + options.seed);
    data::DigitConfig digit_config;
    digit_config.samples = scaled(1000, options.quick);
    digit_config.image_size = 16;
    const data::Dataset full =
        data::synthetic_digits(digit_config, data_rng);

    const models::ArchFamily family =
        models::mlp_arch_family(base_mlp_options(), /*max_hidden_layers=*/4,
                                /*max_dropout_rate=*/0.5);
    const auto baseline = [](Rng& rng) {
        models::MlpOptions o = base_mlp_options();
        o.dropout = models::DropoutKind::kNone;
        return models::make_mlp(o, rng);
    };
    return run_archsearch(
        "archsearch_fig2_mlp", full, family, baseline, "sigma",
        {0.0, 0.3, 0.6, 0.9, 1.2, 1.5},
        [](double level) {
            return std::make_unique<fault::LogNormalDrift>(level);
        },
        default_archsearch_config(options), options, 192);
}

/// Residual family under the stuck-at zoo: depth x norm x dropout searched
/// with ObjectiveConfig::faults, swept over the stuck fraction.
RegistryResult run_archsearch_preact(const RunOptions& options) {
    Rng data_rng(201 + options.seed);
    data::ObjectConfig object_config;
    object_config.samples = scaled(600, options.quick);
    const data::Dataset full =
        data::synthetic_objects(object_config, data_rng);

    const models::ArchFamily family =
        models::preact_arch_family(10, /*max_dropout_rate=*/0.5);
    const auto baseline = [](Rng& rng) {
        return models::make_preact_resnet_s(1, 10, rng);
    };
    ArchSearchConfig config = default_archsearch_config(options);
    config.iterations = options.quick ? 3 : 10;
    config.train.epochs = options.quick ? 1 : 3;
    config.train.learning_rate = 0.02;
    for (double level : {0.05, 0.1}) {
        config.objective.faults.push_back(
            std::make_shared<fault::StuckAtFault>(level, 0.25));
    }
    return run_archsearch(
        "archsearch_preact_stuckat", full, family, baseline,
        "stuck_fraction", {0.0, 0.02, 0.05, 0.1, 0.2},
        [](double level) {
            return std::make_unique<fault::StuckAtFault>(level, 0.25);
        },
        config, options, 202);
}

/// STN family under drift: head width x pooling x per-site dropout on
/// synthetic traffic signs.
RegistryResult run_archsearch_stn(const RunOptions& options) {
    Rng data_rng(211 + options.seed);
    data::TrafficSignConfig sign_config;
    sign_config.samples = scaled(860, options.quick);
    const data::Dataset full =
        data::synthetic_traffic_signs(sign_config, data_rng);

    const models::ArchFamily family =
        models::stn_arch_family(43, /*max_dropout_rate=*/0.5);
    const auto baseline = [](Rng& rng) {
        return models::make_stn_classifier(43, rng);
    };
    ArchSearchConfig config = default_archsearch_config(options);
    config.iterations = options.quick ? 3 : 8;
    config.train.epochs = options.quick ? 1 : 3;
    config.train.learning_rate = 0.02;
    return run_archsearch(
        "archsearch_stn_drift", full, family, baseline, "sigma",
        {0.0, 0.3, 0.6, 0.9},
        [](double level) {
            return std::make_unique<fault::LogNormalDrift>(level);
        },
        config, options, 212);
}

/// CI-sized self-contained search: a tiny MLP family on synthetic blobs,
/// swept over drift.  Seconds-fast even unquick, so the worker-matrix and
/// chaos smokes (docs/distributed.md) can afford byte-diffing full runs
/// at several worker counts.
RegistryResult run_toy_arch(const RunOptions& options) {
    Rng data_rng(221 + options.seed);
    const data::Dataset full = data::make_blobs(
        options.quick ? 180 : 300, 3, 4.0, 0.6, data_rng);

    models::MlpOptions base;
    base.input_features = 2;
    base.hidden = 12;
    base.classes = 3;
    const models::ArchFamily family =
        models::mlp_arch_family(base, /*max_hidden_layers=*/2,
                                /*max_dropout_rate=*/0.5);
    const auto baseline = [base](Rng& rng) {
        return models::make_mlp(base, rng);
    };
    ArchSearchConfig config;
    config.iterations = options.quick ? 3 : 6;
    config.train.epochs = 1;
    config.train.batch_size = 32;
    config.train.learning_rate = 0.05;
    config.objective.sigmas = {0.5};
    config.objective.mc_samples = 1;
    config.bo.initial_random_trials = 2;
    config.final_epochs = 1;
    return run_archsearch(
        "toy_arch_blobs", full, family, baseline, "sigma", {0.0, 0.4, 0.8},
        [](double level) {
            return std::make_unique<fault::LogNormalDrift>(level);
        },
        config, options, 222);
}

// ------------------------------------------------------ Ablations ----

/// GP-guided vs random search under the same trial budget, plus EI/UCB.
RegistryResult run_bo_vs_random(const RunOptions& options) {
    Stopwatch watch;
    Rng data_rng(131 + options.seed);
    data::DigitConfig digit_config;
    digit_config.samples = scaled(1000, options.quick);
    digit_config.image_size = 16;
    const data::Dataset full = data::synthetic_digits(digit_config, data_rng);
    Rng split_rng(132 + options.seed);
    const data::TrainTestSplit parts = data::split(full, 0.25, split_rng);

    BayesFTConfig config;
    config.iterations = options.quick ? 3 : 10;
    config.epochs_per_iteration = 1;
    config.objective.sigmas = {0.3, 0.6, 0.9};
    config.objective.mc_samples = options.quick ? 1 : 3;
    config.final_epochs = 2;
    config.batch = std::max<std::size_t>(1, options.batch);
    config.eval_threads = options.threads;

    const struct {
        const char* label;
        const char* acquisition;  // nullptr = random search
    } strategies[] = {
        {"BO-PosteriorMean", "posterior_mean"},
        {"BO-EI", "ei"},
        {"BO-UCB", "ucb"},
        {"RandomSearch", nullptr},
    };

    RegistryResult result;
    result.experiment = "ablation_bo_vs_random";
    result.x_label = "trial_budget";
    result.xs = {static_cast<double>(config.iterations)};
    for (const auto& strategy : strategies) {
        Rng rng(777 + options.seed);  // identical stream per strategy
        models::MlpOptions model_options = base_mlp_options();
        model_options.hidden_layers = 3;  // 3 searchable dropout sites
        models::ModelHandle model = models::make_mlp(model_options, rng);
        BayesFTConfig run_config = config;
        BayesFTResult search;
        if (strategy.acquisition != nullptr) {
            run_config.acquisition = strategy.acquisition;
            search = bayesft_search(model, parts.train, parts.test,
                                    run_config, rng);
        } else {
            search = random_search(model, parts.train, parts.test,
                                   run_config, rng);
        }
        result.curves.push_back({strategy.label, {search.best_utility}});
    }
    result.seconds = watch.seconds();
    return result;
}

/// Noise of the Monte-Carlo utility estimate (Eq. 4) vs sample count T.
RegistryResult run_mc_samples(const RunOptions& options) {
    Stopwatch watch;
    Rng data_rng(141 + options.seed);
    data::DigitConfig digit_config;
    digit_config.samples = scaled(800, options.quick);
    digit_config.image_size = 16;
    const data::Dataset full = data::synthetic_digits(digit_config, data_rng);
    Rng split_rng(142 + options.seed);
    const data::TrainTestSplit parts = data::split(full, 0.25, split_rng);

    Rng rng(143 + options.seed);
    models::ModelHandle model = models::make_mlp(base_mlp_options(), rng);
    nn::TrainConfig train_config;
    train_config.epochs = options.quick ? 3 : 8;
    train_erm(model, parts.train, train_config, rng);

    RegistryResult result;
    result.experiment = "ablation_mc_samples";
    result.x_label = "mc_samples";
    NamedCurve mean_curve{"mean_utility", {}};
    NamedCurve std_curve{"utility_std", {}};
    NamedCurve cost_curve{"seconds_per_estimate", {}};
    const std::size_t repeats = options.quick ? 4 : 10;
    for (std::size_t t : {1, 2, 4, 8, 16}) {
        result.xs.push_back(static_cast<double>(t));
        ObjectiveConfig objective;
        objective.sigmas = {0.6};
        objective.mc_samples = t;
        std::vector<double> estimates;
        Stopwatch estimate_watch;
        for (std::size_t r = 0; r < repeats; ++r) {
            Rng eval_rng(1000 + r + options.seed);
            estimates.push_back(drift_utility(*model.net, parts.test.images,
                                              parts.test.labels, objective,
                                              eval_rng));
        }
        const double elapsed =
            estimate_watch.seconds() / static_cast<double>(repeats);
        double mean = 0.0;
        for (double e : estimates) mean += e;
        mean /= static_cast<double>(estimates.size());
        double var = 0.0;
        for (double e : estimates) var += (e - mean) * (e - mean);
        var /= static_cast<double>(estimates.size());
        mean_curve.values.push_back(mean);
        std_curve.values.push_back(std::sqrt(var));
        cost_curve.values.push_back(elapsed);
    }
    result.curves.push_back(std::move(mean_curve));
    result.curves.push_back(std::move(std_curve));
    result.curves.push_back(std::move(cost_curve));
    result.seconds = watch.seconds();
    return result;
}

// ---------------------------------------------------- registration ----

ExperimentRegistry make_builtin_registry() {
    ExperimentRegistry registry;
    registry.add({"fig2a_dropout", "fig2",
                  "dropout ablation (MLP, synthetic digits)", run_fig2a});
    registry.add({"fig2b_normalization", "fig2",
                  "normalization ablation (MLP, synthetic digits)",
                  run_fig2b});
    registry.add({"fig2c_depth", "fig2",
                  "model-complexity ablation (MLP depth sweep)", run_fig2c});
    registry.add({"fig2d_activation", "fig2",
                  "activation-function ablation (MLP)", run_fig2d});
    registry.add({"fig3a_mlp_mnist", "fig3",
                  "MLP on synthetic digits, all methods", run_fig3a,
                  /*checkpointable=*/true});
    registry.add({"fig3b_lenet_mnist", "fig3",
                  "LeNet on synthetic digits, all methods", run_fig3b,
                  /*checkpointable=*/true});
    registry.add({"fig3c_alexnet_cifar", "fig3",
                  "AlexNet-S on synthetic objects, all methods", run_fig3c,
                  /*checkpointable=*/true});
    registry.add({"fig3d_resnet_cifar", "fig3",
                  "ResNet18-S on synthetic objects, all methods", run_fig3d,
                  /*checkpointable=*/true});
    registry.add({"fig3e_vgg_cifar", "fig3",
                  "VGG11-S on synthetic objects, all methods", run_fig3e,
                  /*checkpointable=*/true});
    registry.add({"fig3f_preact18", "fig3",
                  "PreAct-S depth 1 block/stage, ERM vs BayesFT",
                  [](const RunOptions& options) {
                      return run_preact_depth("fig3f_preact18", 1, options);
                  },
                  /*checkpointable=*/true});
    registry.add({"fig3g_preact50", "fig3",
                  "PreAct-S depth 2 blocks/stage, ERM vs BayesFT",
                  [](const RunOptions& options) {
                      return run_preact_depth("fig3g_preact50", 2, options);
                  },
                  /*checkpointable=*/true});
    registry.add({"fig3h_preact152", "fig3",
                  "PreAct-S depth 4 blocks/stage, ERM vs BayesFT",
                  [](const RunOptions& options) {
                      return run_preact_depth("fig3h_preact152", 4, options);
                  },
                  /*checkpointable=*/true});
    registry.add({"fig3i_gtsrb", "fig3",
                  "STN-lite on synthetic traffic signs (43 classes)",
                  run_fig3i, /*checkpointable=*/true});
    registry.add({"fig3j_detection", "fig3",
                  "grid detector mAP vs drift (synthetic pedestrians)",
                  run_fig3j});
    registry.add({"faults_fig2a_stuckat", "faults",
                  "dropout ablation under SA0/SA1 stuck-at faults",
                  [](const RunOptions& options) {
                      return run_fault_sweep(
                          "faults_fig2a_stuckat", "stuck_fraction",
                          {0.0, 0.02, 0.05, 0.1, 0.2},
                          [](double level) {
                              return std::make_unique<fault::StuckAtFault>(
                                  level, 0.25);
                          },
                          options);
                  }});
    registry.add({"faults_fig2a_bitflip", "faults",
                  "dropout ablation under 8-bit SEU bit flips",
                  [](const RunOptions& options) {
                      return run_fault_sweep(
                          "faults_fig2a_bitflip", "flip_probability",
                          {0.0, 1e-4, 5e-4, 2e-3, 1e-2},
                          [](double level) {
                              return std::make_unique<fault::BitFlipFault>(
                                  level, 8);
                          },
                          options);
                  }});
    registry.add({"faults_fig2a_variation", "faults",
                  "dropout ablation under lognormal device variation",
                  [](const RunOptions& options) {
                      return run_fault_sweep(
                          "faults_fig2a_variation", "sigma",
                          {0.0, 0.2, 0.4, 0.6, 0.8},
                          [](double level) {
                              return std::make_unique<
                                  fault::GaussianVariationFault>(level);
                          },
                          options);
                  }});
    registry.add({"faults_fig2a_quant", "faults",
                  "dropout ablation vs quantization word width",
                  [](const RunOptions& options) {
                      return run_fault_sweep(
                          "faults_fig2a_quant", "bits",
                          {8.0, 6.0, 5.0, 4.0, 3.0, 2.0},
                          [](double level) {
                              return std::make_unique<
                                  fault::QuantizationFault>(
                                  static_cast<int>(level));
                          },
                          options);
                  }});
    registry.add({"faults_fig3a_stuckat", "faults",
                  "ERM vs BayesFT searched under stuck-at faults",
                  [](const RunOptions& options) {
                      return run_fault_search(
                          "faults_fig3a_stuckat", "stuck_fraction",
                          {0.0, 0.02, 0.05, 0.1, 0.2}, {0.05, 0.1},
                          [](double level) {
                              return std::make_unique<fault::StuckAtFault>(
                                  level, 0.25);
                          },
                          options);
                  },
                  /*checkpointable=*/true});
    registry.add({"faults_fig3a_bitflip", "faults",
                  "ERM vs BayesFT searched under SEU bit flips",
                  [](const RunOptions& options) {
                      return run_fault_search(
                          "faults_fig3a_bitflip", "flip_probability",
                          {0.0, 1e-4, 5e-4, 2e-3, 1e-2}, {5e-4, 2e-3},
                          [](double level) {
                              return std::make_unique<fault::BitFlipFault>(
                                  level, 8);
                          },
                          options);
                  },
                  /*checkpointable=*/true});
    registry.add({"faults_fig3j_variation", "faults",
                  "grid detector mAP vs device variation",
                  run_fault_detection});
    registry.add({"faults_composed_deploy", "faults",
                  "quantize->variation->drift deployment chain vs drift",
                  run_composed_deploy});
    registry.add({"faults_int8_inference", "faults",
                  "float32 vs int8/int12 fixed-point forward under drift",
                  run_fixed_point_inference});
    registry.add({"faults_dac12_deploy", "faults",
                  "DAC12 12-bit deployment chain, float32 vs int12 forward",
                  run_dac12_deploy});
    registry.add({"archsearch_fig2_mlp", "archsearch",
                  "joint norm/activation/depth/dropout MLP search vs drift",
                  run_archsearch_mlp, /*checkpointable=*/true,
                  /*distributable=*/true});
    registry.add({"archsearch_preact_stuckat", "archsearch",
                  "PreAct depth/norm/dropout search under stuck-at faults",
                  run_archsearch_preact, /*checkpointable=*/true,
                  /*distributable=*/true});
    registry.add({"archsearch_stn_drift", "archsearch",
                  "STN head-width/pool/dropout search under drift",
                  run_archsearch_stn, /*checkpointable=*/true,
                  /*distributable=*/true});
    registry.add({"ablation_bo_vs_random", "ablation",
                  "GP-guided vs random alpha search, same budget",
                  run_bo_vs_random});
    registry.add({"ablation_mc_samples", "ablation",
                  "MC utility-estimate noise vs sample count T",
                  run_mc_samples});
    registry.add({"toy_mlp_blobs", "toy",
                  "CI-sized blobs task, ERM vs BayesFT", run_toy,
                  /*checkpointable=*/true});
    registry.add({"toy_arch_blobs", "toy",
                  "CI-sized self-contained arch search on blobs vs drift",
                  run_toy_arch, /*checkpointable=*/true,
                  /*distributable=*/true});
    return registry;
}

}  // namespace

const ExperimentRegistry& ExperimentRegistry::instance() {
    static const ExperimentRegistry registry = make_builtin_registry();
    return registry;
}

void ExperimentRegistry::add(ExperimentSpec spec) {
    if (spec.name.empty() || !spec.run) {
        throw std::invalid_argument(
            "ExperimentRegistry::add: spec needs a name and a runner");
    }
    if (find(spec.name) != nullptr) {
        throw std::invalid_argument("ExperimentRegistry::add: duplicate '" +
                                    spec.name + "'");
    }
    specs_.push_back(std::move(spec));
}

std::vector<std::string> ExperimentRegistry::names() const {
    std::vector<std::string> out;
    out.reserve(specs_.size());
    for (const ExperimentSpec& spec : specs_) out.push_back(spec.name);
    return out;
}

const ExperimentSpec* ExperimentRegistry::find(
    const std::string& name) const {
    for (const ExperimentSpec& spec : specs_) {
        if (spec.name == name) return &spec;
    }
    return nullptr;
}

RegistryResult ExperimentRegistry::run(const std::string& name,
                                       const RunOptions& options) const {
    const ExperimentSpec* spec = find(name);
    if (spec == nullptr) {
        throw std::invalid_argument(
            "ExperimentRegistry::run: unknown experiment '" + name +
            "' (use --list)");
    }
    return spec->run(options);
}

}  // namespace bayesft::core
