#pragma once
// Single-attempt execution and retry policy shared by every candidate
// evaluation path — in-process (core/engine.cpp), crash-isolated children,
// and the distributed worker pool (core/distrib.cpp).  Internal to the
// runtime; not part of the public engine API.
//
// All three paths must classify and retry identically: chaos decisions,
// the attempt taxonomy, and the backoff delay are pure functions of the
// candidate seed and attempt index, which is what keeps a recovered trial
// bit-identical to one that never failed, on every execution path.

#include <chrono>
#include <cstdint>
#include <functional>

#include "core/trial.hpp"
#include "fault/chaos.hpp"

namespace bayesft::core {

/// Outcome of one evaluation attempt (before retry accounting).
struct AttemptResult {
    double utility = 0.0;
    TrialStatus status = TrialStatus::kOk;
};

/// Deterministic retry backoff: a pure function of the candidate seed and
/// the attempt index (never wall-clock randomness — the delay must not
/// become a covert source of nondeterminism in the trial log).  Linear in
/// the attempt number with a +-50% seed-derived jitter so retry storms
/// across a batch decorrelate.
std::chrono::microseconds backoff_duration(const ResilienceConfig& resilience,
                                           std::uint64_t candidate_seed,
                                           std::uint64_t attempt);

/// Sleeps for backoff_duration (no-op at zero).
void backoff_sleep(const ResilienceConfig& resilience,
                   std::uint64_t candidate_seed, std::uint64_t attempt);

/// One guarded in-process evaluation attempt: applies the (seeded, pure)
/// chaos decision, absorbs evaluator exceptions, classifies non-finite
/// results, and applies the post-hoc wall-clock deadline.  In-process the
/// deadline cannot preempt a stuck evaluator — that needs a child process
/// (isolation or a worker), which is SIGKILLed; here an injected hang
/// sleeps just past the deadline and is then classified.
AttemptResult guarded_attempt(const fault::ChaosSpec& chaos,
                              const ResilienceConfig& resilience,
                              std::uint64_t candidate_seed,
                              std::uint64_t attempt,
                              const std::function<double()>& run);

/// Bounded-retry wrapper around guarded_attempt, starting at
/// `first_attempt` (> 0 when a child-based attempt already failed and the
/// candidate fell back to in-process execution with its remaining retry
/// budget).  Each retry rolls fresh chaos dice (the attempt index is
/// folded into the decision) but replays the identical candidate stream,
/// so a recovered trial is bit-identical to one that never failed.
AttemptResult evaluate_with_retries(const fault::ChaosSpec& chaos,
                                    const ResilienceConfig& resilience,
                                    std::uint64_t candidate_seed,
                                    std::uint64_t first_attempt,
                                    const std::function<double()>& run);

}  // namespace bayesft::core
