#include "core/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <deque>
#include <limits>
#include <stdexcept>
#include <thread>

#include "core/attempt.hpp"
#include "core/distrib.hpp"
#include "core/persist.hpp"
#include "core/runstore.hpp"
#include "utils/logging.hpp"
#include "utils/parallel.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#define BAYESFT_HAS_FORK 1
#endif

namespace bayesft::core {

namespace {

constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001B3ULL;

std::uint64_t fnv1a_bytes(std::uint64_t seed, const unsigned char* bytes,
                          std::size_t count) {
    std::uint64_t h = seed == 0 ? kFnvOffset : seed;
    for (std::size_t i = 0; i < count; ++i) {
        h ^= bytes[i];
        h *= kFnvPrime;
    }
    return h;
}

// --- fault-tolerant trial execution (docs/robustness.md) -------------------

/// Consecutive child-spawn failures before the watchdog disables isolation.
constexpr std::size_t kSpawnFailureLimit = 3;

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

double elapsed_seconds(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

}  // namespace

// --- shared attempt/retry policy (core/attempt.hpp) ------------------------
// Used by all three evaluation paths: in-process here, the crash-isolated
// children below, and the distributed worker pool (core/distrib.cpp).

std::chrono::microseconds backoff_duration(const ResilienceConfig& resilience,
                                           std::uint64_t candidate_seed,
                                           std::uint64_t attempt) {
    const std::uint64_t h =
        mix_key(mix_key(candidate_seed, std::string_view("retry-backoff")),
                attempt);
    const double unit = static_cast<double>(h >> 11) * 0x1.0p-53;
    const double seconds = resilience.backoff_seconds *
                           static_cast<double>(attempt + 1) * (0.5 + unit);
    return std::chrono::microseconds(
        static_cast<std::chrono::microseconds::rep>(seconds * 1e6));
}

void backoff_sleep(const ResilienceConfig& resilience,
                   std::uint64_t candidate_seed, std::uint64_t attempt) {
    const auto delay = backoff_duration(resilience, candidate_seed, attempt);
    if (delay.count() > 0) std::this_thread::sleep_for(delay);
}

AttemptResult guarded_attempt(const fault::ChaosSpec& chaos,
                              const ResilienceConfig& resilience,
                              std::uint64_t candidate_seed,
                              std::uint64_t attempt,
                              const std::function<double()>& run) {
    const fault::ChaosAction action =
        fault::chaos_decide(chaos, candidate_seed, attempt);
    if (action == fault::ChaosAction::kCrash) {
        return {kNaN, TrialStatus::kFailedCrash};
    }
    if (action == fault::ChaosAction::kHang &&
        resilience.timeout_seconds > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(
            resilience.timeout_seconds * 1.1));
        return {kNaN, TrialStatus::kFailedTimeout};
    }
    // An injected hang with no deadline configured degenerates to a normal
    // evaluation: blocking forever would turn a test knob into a deadlock.
    const auto start = std::chrono::steady_clock::now();
    double utility = kNaN;
    try {
        utility = run();
    } catch (const std::exception&) {
        return {kNaN, TrialStatus::kFailedCrash};
    }
    if (action == fault::ChaosAction::kNaN) utility = kNaN;
    if (!std::isfinite(utility)) {
        return {utility, TrialStatus::kFailedNaN};
    }
    if (resilience.timeout_seconds > 0.0 &&
        elapsed_seconds(start) > resilience.timeout_seconds) {
        return {kNaN, TrialStatus::kFailedTimeout};
    }
    return {utility, TrialStatus::kOk};
}

AttemptResult evaluate_with_retries(const fault::ChaosSpec& chaos,
                                    const ResilienceConfig& resilience,
                                    std::uint64_t candidate_seed,
                                    std::uint64_t first_attempt,
                                    const std::function<double()>& run) {
    AttemptResult result;
    for (std::uint64_t attempt = first_attempt;; ++attempt) {
        result = guarded_attempt(chaos, resilience, candidate_seed, attempt,
                                 run);
        if (result.status == TrialStatus::kOk ||
            attempt >= resilience.max_retries) {
            break;
        }
        backoff_sleep(resilience, candidate_seed, attempt);
    }
    return result;
}

std::uint64_t candidate_seed(const EvalContext& context, const Alpha& point) {
    std::uint64_t h = mix_key(context.key, context.stamp);
    return mix_key(h, point.data(), point.size());
}

std::uint64_t mix_key(std::uint64_t seed, const double* values,
                      std::size_t count) {
    static_assert(sizeof(double) == sizeof(std::uint64_t));
    unsigned char bytes[sizeof(double)];
    std::uint64_t h = seed == 0 ? kFnvOffset : seed;
    for (std::size_t i = 0; i < count; ++i) {
        std::memcpy(bytes, &values[i], sizeof(double));
        h = fnv1a_bytes(h, bytes, sizeof(double));
    }
    return h;
}

std::uint64_t mix_key(std::uint64_t seed, std::uint64_t value) {
    unsigned char bytes[sizeof(std::uint64_t)];
    std::memcpy(bytes, &value, sizeof(std::uint64_t));
    return fnv1a_bytes(seed == 0 ? kFnvOffset : seed, bytes,
                       sizeof(std::uint64_t));
}

std::uint64_t mix_key(std::uint64_t seed, std::string_view text) {
    // Length-prefixed so {"ab","c"} and {"a","bc"} digest differently.
    std::uint64_t h = mix_key(seed, static_cast<std::uint64_t>(text.size()));
    return fnv1a_bytes(h, reinterpret_cast<const unsigned char*>(text.data()),
                       text.size());
}

std::size_t EvaluationEngine::CacheKeyHash::operator()(
    const CacheKey& key) const {
    std::uint64_t h = mix_key(key.context, key.stamp);
    return static_cast<std::size_t>(
        mix_key(h, key.alpha.data(), key.alpha.size()));
}

EvaluationEngine::EvaluationEngine(EngineConfig config) : config_(config) {}

EvaluationEngine::~EvaluationEngine() = default;

BatchOutcome EvaluationEngine::evaluate_batch(
    models::ModelHandle& model, const std::vector<Alpha>& alphas,
    const CandidateEvaluator& evaluator, Rng& rng, const EvalContext& context,
    bool adopt_winner) {
    if (alphas.empty()) {
        throw std::invalid_argument(
            "EvaluationEngine::evaluate_batch: empty batch");
    }
    if (!evaluator) {
        throw std::invalid_argument(
            "EvaluationEngine::evaluate_batch: no evaluator");
    }
    const std::size_t q = alphas.size();
    if (config_.cache &&
        (!has_active_context_ || active_context_ != context.key ||
         active_stamp_ != context.stamp)) {
        cache_.clear();
        active_context_ = context.key;
        active_stamp_ = context.stamp;
        has_active_context_ = true;
    }
    BatchOutcome outcome;
    outcome.utilities.assign(q, 0.0);
    outcome.statuses.assign(q, TrialStatus::kOk);

    if (q == 1) {
        // Serial-identical path: in-place training on the caller's model
        // with the caller's RNG.  Never cached — a hit would skip the
        // training step the serial loop performs.  The evaluator may have
        // mutated the weights, so drop any memoized utilities (same
        // defensive invariant as the adoption path).
        //
        // Fault tolerance here needs a rollback: a failed attempt may have
        // half-trained the shared model and advanced the caller's RNG, so
        // the pre-attempt state (weights, dropout mask generators, caller
        // generator) is snapshotted and restored before every retry — and
        // after a final failure, so a quarantined candidate leaves theta
        // and the RNG stream exactly as if it was never proposed.
        model.set_dropout_rates(alphas[0]);
        const ResilienceConfig& resilience = config_.resilience;
        const bool guard = model.net != nullptr &&
                           (resilience.max_retries > 0 ||
                            resilience.timeout_seconds > 0.0 ||
                            config_.chaos.any());
        std::vector<std::uint32_t> saved_bits;
        std::vector<RngState> saved_rngs;
        RngState saved_caller;
        if (guard) {
            saved_bits = snapshot_model(*model.net);
            saved_rngs = snapshot_model_rngs(*model.net);
            saved_caller = rng.state();
        }
        const std::uint64_t cseed = candidate_seed(context, alphas[0]);
        AttemptResult result;
        for (std::uint64_t attempt = 0;; ++attempt) {
            result = guarded_attempt(
                config_.chaos, resilience, cseed, attempt,
                [&] { return evaluator(model, alphas[0], rng); });
            if (result.status == TrialStatus::kOk) break;
            if (!guard) break;  // no snapshot, nothing to roll back to
            restore_model(*model.net, saved_bits);
            restore_model_rngs(*model.net, saved_rngs);
            rng.set_state(saved_caller);
            if (attempt >= resilience.max_retries) break;
            backoff_sleep(resilience, cseed, attempt);
        }
        outcome.utilities[0] = result.utility;
        outcome.statuses[0] = result.status;
        cache_.clear();
        has_active_context_ = false;
        return outcome;
    }

    // Within-batch dedup: candidate j with an identical earlier alpha reuses
    // that candidate's result (identical RNG stream => identical utility).
    std::vector<std::size_t> owner(q);
    for (std::size_t j = 0; j < q; ++j) {
        owner[j] = j;
        for (std::size_t i = 0; i < j; ++i) {
            if (alphas[i] == alphas[j]) {
                owner[j] = i;
                break;
            }
        }
    }

    std::vector<char> memoized(q, 0);
    std::vector<std::size_t> live;
    live.reserve(q);
    for (std::size_t j = 0; j < q; ++j) {
        if (owner[j] != j) continue;
        if (config_.cache) {
            const auto it =
                cache_.find(CacheKey{context.key, context.stamp, alphas[j]});
            if (it != cache_.end()) {
                outcome.utilities[j] = it->second;
                memoized[j] = 1;
                ++outcome.cache_hits;
                continue;
            }
        }
        live.push_back(j);
    }

    std::vector<models::ModelHandle> replicas(q);
    auto evaluate_candidate = [&](std::size_t j) {
        const std::uint64_t cseed = candidate_seed(context, alphas[j]);
        // Each attempt clones a fresh replica off the (unchanged) base
        // model and replays the identical candidate stream, so a retried
        // success is bit-identical to a first-try success.
        models::ModelHandle trained;
        const AttemptResult result = evaluate_with_retries(
            config_.chaos, config_.resilience, cseed, 0, [&] {
                models::ModelHandle replica = model.clone();
                replica.set_dropout_rates(alphas[j]);
                Rng candidate_rng(cseed);
                const double utility =
                    evaluator(replica, alphas[j], candidate_rng);
                trained = std::move(replica);
                return utility;
            });
        outcome.utilities[j] = result.utility;
        outcome.statuses[j] = result.status;
        if (result.status == TrialStatus::kOk) {
            replicas[j] = std::move(trained);
        }
    };
    if (!live.empty()) {
        std::size_t threads =
            config_.threads == 0 ? parallel_thread_count() : config_.threads;
        threads = std::min(std::max<std::size_t>(threads, 1), live.size());
        const std::size_t grain = (live.size() + threads - 1) / threads;
        parallel_for(0, live.size(), grain,
                     [&](std::size_t lo, std::size_t hi) {
                         for (std::size_t i = lo; i < hi; ++i) {
                             evaluate_candidate(live[i]);
                         }
                     });
    }

    for (std::size_t j = 0; j < q; ++j) {
        if (owner[j] == j) continue;
        outcome.utilities[j] = outcome.utilities[owner[j]];
        outcome.statuses[j] = outcome.statuses[owner[j]];
        ++outcome.cache_hits;  // duplicate proposals are free
    }
    if (config_.cache) {
        // Failures are never memoized: a crash or an injected fault is a
        // property of one attempt, not of the candidate point.
        for (const std::size_t j : live) {
            if (outcome.statuses[j] != TrialStatus::kOk) continue;
            cache_.emplace(CacheKey{context.key, context.stamp, alphas[j]},
                           outcome.utilities[j]);
        }
    }
    total_hits_ += outcome.cache_hits;

    outcome.best_index = 0;
    bool found_ok = false;
    for (std::size_t j = 0; j < q; ++j) {
        if (outcome.statuses[j] != TrialStatus::kOk) continue;
        if (!found_ok ||
            outcome.utilities[j] > outcome.utilities[outcome.best_index]) {
            outcome.best_index = j;
            found_ok = true;
        }
    }

    if (adopt_winner && found_ok) {
        const std::size_t source = owner[outcome.best_index];
        if (!replicas[source].net && memoized[source]) {
            // Cross-call cache hit won without a live replica: re-run it to
            // materialize the trained weights (same stream => same result).
            evaluate_candidate(source);
        }
        if (replicas[source].net) {
            model.net = std::move(replicas[source].net);
            model.dropout_sites = std::move(replicas[source].dropout_sites);
        }
        // The weights just changed: cached utilities are stale regardless
        // of whether the caller remembers to bump context.stamp.
        cache_.clear();
        has_active_context_ = false;
    }
    // A fully failed batch adopts nothing: the model is exactly the state
    // before the batch, so the quarantined group leaves no trace in theta.
    (void)rng;  // q > 1 never advances the caller's generator
    return outcome;
}

std::vector<std::pair<Alpha, double>> EvaluationEngine::export_cache() const {
    std::vector<std::pair<Alpha, double>> entries;
    if (!has_active_context_) return entries;
    entries.reserve(cache_.size());
    for (const auto& [key, utility] : cache_) {
        entries.emplace_back(key.alpha, utility);
    }
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    return entries;
}

void EvaluationEngine::import_cache(
    const EvalContext& context,
    const std::vector<std::pair<Alpha, double>>& entries) {
    cache_.clear();
    active_context_ = context.key;
    active_stamp_ = context.stamp;
    has_active_context_ = true;
    if (!config_.cache) return;
    for (const auto& [alpha, utility] : entries) {
        cache_.emplace(CacheKey{context.key, context.stamp, alpha}, utility);
    }
}

BatchOutcome EvaluationEngine::evaluate_points(
    const std::vector<Alpha>& points, const PointEvaluator& evaluator,
    const EvalContext& context) {
    if (points.empty()) {
        throw std::invalid_argument(
            "EvaluationEngine::evaluate_points: empty batch");
    }
    if (!evaluator) {
        throw std::invalid_argument(
            "EvaluationEngine::evaluate_points: no evaluator");
    }
    const std::size_t q = points.size();
    if (config_.cache &&
        (!has_active_context_ || active_context_ != context.key ||
         active_stamp_ != context.stamp)) {
        cache_.clear();
        active_context_ = context.key;
        active_stamp_ = context.stamp;
        has_active_context_ = true;
    }
    BatchOutcome outcome;
    outcome.utilities.assign(q, 0.0);
    outcome.statuses.assign(q, TrialStatus::kOk);

    // Within-batch dedup + cross-call memo hits, exactly as evaluate_batch;
    // unlike the model path there is no q == 1 special case, because every
    // candidate runs on its own derived RNG stream regardless of batch size.
    std::vector<std::size_t> owner(q);
    for (std::size_t j = 0; j < q; ++j) {
        owner[j] = j;
        for (std::size_t i = 0; i < j; ++i) {
            if (points[i] == points[j]) {
                owner[j] = i;
                break;
            }
        }
    }
    std::vector<std::size_t> live;
    live.reserve(q);
    for (std::size_t j = 0; j < q; ++j) {
        if (owner[j] != j) continue;
        if (config_.cache) {
            const auto it =
                cache_.find(CacheKey{context.key, context.stamp, points[j]});
            if (it != cache_.end()) {
                outcome.utilities[j] = it->second;
                ++outcome.cache_hits;
                continue;
            }
        }
        live.push_back(j);
    }

    bool isolated = false;
#ifdef BAYESFT_HAS_FORK
    if (config_.resilience.isolate && !isolation_disabled_ &&
        !live.empty()) {
        evaluate_points_isolated(points, evaluator, context, live, outcome);
        isolated = true;
    } else if (config_.workers > 0 && !distribution_disabled_ &&
               !live.empty()) {
        // Distributed evaluation (docs/distributed.md): the pool forks
        // once and persists across batches; it binds this call's
        // evaluator, so callers must keep the evaluator stable for the
        // engine's lifetime (self-contained searches do).
        if (!pool_) {
            WorkerPool::Config pool_config;
            pool_config.workers = config_.workers;
            pool_config.resilience = config_.resilience;
            pool_config.chaos = config_.chaos;
            pool_ = std::make_unique<WorkerPool>(pool_config, evaluator);
        }
        if (pool_->degraded()) {
            distribution_disabled_ = true;
        } else {
            pool_->evaluate(points, live, context, outcome);
            isolated = true;
            // A mid-batch watchdog trip still completed this batch (the
            // pool finishes stranded jobs in-process); later batches skip
            // the pool entirely.
            if (pool_->degraded()) distribution_disabled_ = true;
        }
    }
#endif
    if (!isolated && !live.empty()) {
        auto evaluate_candidate = [&](std::size_t j) {
            const std::uint64_t cseed = candidate_seed(context, points[j]);
            const AttemptResult result = evaluate_with_retries(
                config_.chaos, config_.resilience, cseed, 0, [&] {
                    Rng rng(cseed);
                    return evaluator(points[j], rng);
                });
            outcome.utilities[j] = result.utility;
            outcome.statuses[j] = result.status;
        };
        std::size_t threads =
            config_.threads == 0 ? parallel_thread_count() : config_.threads;
        threads = std::min(std::max<std::size_t>(threads, 1), live.size());
        const std::size_t grain = (live.size() + threads - 1) / threads;
        parallel_for(0, live.size(), grain,
                     [&](std::size_t lo, std::size_t hi) {
                         for (std::size_t i = lo; i < hi; ++i) {
                             evaluate_candidate(live[i]);
                         }
                     });
    }

    for (std::size_t j = 0; j < q; ++j) {
        if (owner[j] == j) continue;
        outcome.utilities[j] = outcome.utilities[owner[j]];
        outcome.statuses[j] = outcome.statuses[owner[j]];
        ++outcome.cache_hits;
    }
    if (config_.cache) {
        // Failures are never memoized (see evaluate_batch).
        for (const std::size_t j : live) {
            if (outcome.statuses[j] != TrialStatus::kOk) continue;
            cache_.emplace(CacheKey{context.key, context.stamp, points[j]},
                           outcome.utilities[j]);
        }
    }
    total_hits_ += outcome.cache_hits;

    outcome.best_index = 0;
    bool found_ok = false;
    for (std::size_t j = 0; j < q; ++j) {
        if (outcome.statuses[j] != TrialStatus::kOk) continue;
        if (!found_ok ||
            outcome.utilities[j] > outcome.utilities[outcome.best_index]) {
            outcome.best_index = j;
            found_ok = true;
        }
    }
    return outcome;
}

#ifdef BAYESFT_HAS_FORK

void EvaluationEngine::evaluate_points_isolated(
    const std::vector<Alpha>& points, const PointEvaluator& evaluator,
    const EvalContext& context, const std::vector<std::size_t>& live,
    BatchOutcome& outcome) {
    using Clock = std::chrono::steady_clock;
    const ResilienceConfig& resilience = config_.resilience;
    const fault::ChaosSpec& chaos = config_.chaos;

    // One attempt of one candidate, scheduled not before a deterministic
    // backoff delay when it is a retry.
    struct Job {
        std::size_t index = 0;
        std::uint64_t attempt = 0;
        Clock::time_point not_before;
    };
    struct Child {
        pid_t pid = -1;
        int fd = -1;
        std::string buffer;
        bool has_deadline = false;
        Clock::time_point deadline;
        Job job;
    };

    std::deque<Job> queue;
    const Clock::time_point start = Clock::now();
    for (const std::size_t j : live) queue.push_back({j, 0, start});
    std::vector<Child> running;

    std::size_t width =
        config_.threads == 0 ? parallel_thread_count() : config_.threads;
    width = std::min(std::max<std::size_t>(width, 1), live.size());

    // Watchdog fallback: one candidate evaluated in-process, with the
    // remaining retry budget, when its child could not be spawned.
    auto run_in_process = [&](const Job& job) {
        const std::uint64_t cseed = candidate_seed(context, points[job.index]);
        const AttemptResult result = evaluate_with_retries(
            chaos, resilience, cseed, job.attempt, [&] {
                Rng rng(cseed);
                return evaluator(points[job.index], rng);
            });
        outcome.utilities[job.index] = result.utility;
        outcome.statuses[job.index] = result.status;
    };

    auto finalize = [&](const Job& job, TrialStatus status, double utility) {
        if (status != TrialStatus::kOk &&
            job.attempt < resilience.max_retries) {
            const std::uint64_t cseed =
                candidate_seed(context, points[job.index]);
            queue.push_back(
                {job.index, job.attempt + 1,
                 Clock::now() +
                     backoff_duration(resilience, cseed, job.attempt)});
            return;
        }
        outcome.utilities[job.index] = utility;
        outcome.statuses[job.index] = status;
    };

    while (!queue.empty() || !running.empty()) {
        // Launch children up to the width, skipping retry jobs whose
        // backoff has not elapsed yet.
        for (auto it = queue.begin();
             it != queue.end() && running.size() < width;) {
            if (it->not_before > Clock::now()) {
                ++it;
                continue;
            }
            const Job job = *it;
            it = queue.erase(it);
            if (isolation_disabled_) {
                // The watchdog already tripped (possibly mid-batch):
                // everything still queued runs in-process.
                run_in_process(job);
                continue;
            }
            const std::uint64_t cseed =
                candidate_seed(context, points[job.index]);

            bool spawn_failed =
                fault::chaos_spawn_failure(chaos, cseed, job.attempt);
            int fds[2] = {-1, -1};
            if (!spawn_failed && ::pipe(fds) != 0) spawn_failed = true;
            pid_t pid = -1;
            if (!spawn_failed) {
                pid = ::fork();
                if (pid < 0) {
                    spawn_failed = true;
                    ::close(fds[0]);
                    ::close(fds[1]);
                }
            }
            if (spawn_failed) {
                if (++spawn_failures_ >= kSpawnFailureLimit &&
                    !isolation_disabled_) {
                    isolation_disabled_ = true;
                    log_warn() << "engine: " << spawn_failures_
                               << " consecutive child-spawn failures; "
                                  "degrading to in-process evaluation for "
                                  "the rest of the run";
                }
                run_in_process(job);
                continue;
            }
            spawn_failures_ = 0;

            if (pid == 0) {
                // --- child: evaluate one candidate, report one run-store
                // trial line over the pipe, and _exit without touching the
                // parent's buffered state.  An injected crash aborts (the
                // signal IS the test); an injected hang sleeps until the
                // parent's SIGKILL deadline fires.
                ::close(fds[0]);
                const fault::ChaosAction action =
                    fault::chaos_decide(chaos, cseed, job.attempt);
                if (action == fault::ChaosAction::kCrash) std::abort();
                if (action == fault::ChaosAction::kHang &&
                    resilience.timeout_seconds > 0.0) {
                    std::this_thread::sleep_for(std::chrono::hours(1));
                    ::_exit(4);
                }
                double utility = kNaN;
                try {
                    Rng rng(cseed);
                    utility = evaluator(points[job.index], rng);
                } catch (const std::exception&) {
                    ::_exit(3);
                }
                if (action == fault::ChaosAction::kNaN) utility = kNaN;
                RunRecord record;
                record.kind = "trial";
                record.scenario = "isolated-eval";
                record.family = "engine";
                record.seed = cseed;
                record.trial = job.index;
                record.point = "-";
                record.objective = utility;
                const std::string line = RunStore::to_json(record) + "\n";
                const char* data = line.data();
                std::size_t left = line.size();
                while (left > 0) {
                    const ssize_t wrote = ::write(fds[1], data, left);
                    if (wrote <= 0) ::_exit(5);
                    data += wrote;
                    left -= static_cast<std::size_t>(wrote);
                }
                ::_exit(0);
            }

            // --- parent
            ::close(fds[1]);
            ::fcntl(fds[0], F_SETFL, O_NONBLOCK);
            Child child;
            child.pid = pid;
            child.fd = fds[0];
            child.job = job;
            child.has_deadline = resilience.timeout_seconds > 0.0;
            if (child.has_deadline) {
                child.deadline =
                    Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                       std::chrono::duration<double>(
                                           resilience.timeout_seconds));
            }
            running.push_back(std::move(child));
        }

        // Poll the running children: drain their pipes, reap exits,
        // enforce deadlines.
        bool progressed = false;
        for (auto it = running.begin(); it != running.end();) {
            Child& child = *it;
            char buf[512];
            ssize_t got = 0;
            while ((got = ::read(child.fd, buf, sizeof buf)) > 0) {
                child.buffer.append(buf, static_cast<std::size_t>(got));
            }
            int wait_status = 0;
            const pid_t reaped = ::waitpid(child.pid, &wait_status, WNOHANG);
            if (reaped == 0) {
                if (child.has_deadline && Clock::now() > child.deadline) {
                    // The only true preemption in the runtime: a wedged
                    // evaluation cannot be cancelled in-process, but a
                    // child is simply killed.
                    ::kill(child.pid, SIGKILL);
                    ::waitpid(child.pid, &wait_status, 0);
                    ::close(child.fd);
                    finalize(child.job, TrialStatus::kFailedTimeout, kNaN);
                    it = running.erase(it);
                    progressed = true;
                } else {
                    ++it;
                }
                continue;
            }
            while ((got = ::read(child.fd, buf, sizeof buf)) > 0) {
                child.buffer.append(buf, static_cast<std::size_t>(got));
            }
            ::close(child.fd);
            // Classify: a clean exit with a complete, matching trial line
            // is the only success; anything else — signal, nonzero exit,
            // torn or missing line — is a crash, and a transmitted
            // non-finite objective is a NaN failure.
            TrialStatus status = TrialStatus::kFailedCrash;
            double utility = kNaN;
            if (WIFEXITED(wait_status) && WEXITSTATUS(wait_status) == 0) {
                const std::size_t newline = child.buffer.find('\n');
                if (newline != std::string::npos) {
                    RunRecord record;
                    if (RunStore::parse_line(child.buffer.substr(0, newline),
                                             record) &&
                        record.kind == "trial" &&
                        record.trial == child.job.index) {
                        utility = record.objective;
                        status = std::isfinite(utility)
                                     ? TrialStatus::kOk
                                     : TrialStatus::kFailedNaN;
                    }
                }
            }
            finalize(child.job, status, utility);
            it = running.erase(it);
            progressed = true;
        }

        if (!progressed && (!running.empty() || !queue.empty())) {
            std::this_thread::sleep_for(std::chrono::microseconds(500));
        }
    }
}

#else  // !BAYESFT_HAS_FORK

void EvaluationEngine::evaluate_points_isolated(
    const std::vector<Alpha>& points, const PointEvaluator& evaluator,
    const EvalContext& context, const std::vector<std::size_t>& live,
    BatchOutcome& outcome) {
    // Unreachable: the caller only dispatches here under BAYESFT_HAS_FORK.
    (void)points;
    (void)evaluator;
    (void)context;
    (void)live;
    (void)outcome;
}

#endif  // BAYESFT_HAS_FORK

}  // namespace bayesft::core
