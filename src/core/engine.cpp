#include "core/engine.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "utils/parallel.hpp"

namespace bayesft::core {

namespace {

constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001B3ULL;

std::uint64_t fnv1a_bytes(std::uint64_t seed, const unsigned char* bytes,
                          std::size_t count) {
    std::uint64_t h = seed == 0 ? kFnvOffset : seed;
    for (std::size_t i = 0; i < count; ++i) {
        h ^= bytes[i];
        h *= kFnvPrime;
    }
    return h;
}

}  // namespace

std::uint64_t candidate_seed(const EvalContext& context, const Alpha& point) {
    std::uint64_t h = mix_key(context.key, context.stamp);
    return mix_key(h, point.data(), point.size());
}

std::uint64_t mix_key(std::uint64_t seed, const double* values,
                      std::size_t count) {
    static_assert(sizeof(double) == sizeof(std::uint64_t));
    unsigned char bytes[sizeof(double)];
    std::uint64_t h = seed == 0 ? kFnvOffset : seed;
    for (std::size_t i = 0; i < count; ++i) {
        std::memcpy(bytes, &values[i], sizeof(double));
        h = fnv1a_bytes(h, bytes, sizeof(double));
    }
    return h;
}

std::uint64_t mix_key(std::uint64_t seed, std::uint64_t value) {
    unsigned char bytes[sizeof(std::uint64_t)];
    std::memcpy(bytes, &value, sizeof(std::uint64_t));
    return fnv1a_bytes(seed == 0 ? kFnvOffset : seed, bytes,
                       sizeof(std::uint64_t));
}

std::uint64_t mix_key(std::uint64_t seed, std::string_view text) {
    // Length-prefixed so {"ab","c"} and {"a","bc"} digest differently.
    std::uint64_t h = mix_key(seed, static_cast<std::uint64_t>(text.size()));
    return fnv1a_bytes(h, reinterpret_cast<const unsigned char*>(text.data()),
                       text.size());
}

std::size_t EvaluationEngine::CacheKeyHash::operator()(
    const CacheKey& key) const {
    std::uint64_t h = mix_key(key.context, key.stamp);
    return static_cast<std::size_t>(
        mix_key(h, key.alpha.data(), key.alpha.size()));
}

EvaluationEngine::EvaluationEngine(EngineConfig config) : config_(config) {}

BatchOutcome EvaluationEngine::evaluate_batch(
    models::ModelHandle& model, const std::vector<Alpha>& alphas,
    const CandidateEvaluator& evaluator, Rng& rng, const EvalContext& context,
    bool adopt_winner) {
    if (alphas.empty()) {
        throw std::invalid_argument(
            "EvaluationEngine::evaluate_batch: empty batch");
    }
    if (!evaluator) {
        throw std::invalid_argument(
            "EvaluationEngine::evaluate_batch: no evaluator");
    }
    const std::size_t q = alphas.size();
    if (config_.cache &&
        (!has_active_context_ || active_context_ != context.key ||
         active_stamp_ != context.stamp)) {
        cache_.clear();
        active_context_ = context.key;
        active_stamp_ = context.stamp;
        has_active_context_ = true;
    }
    BatchOutcome outcome;
    outcome.utilities.assign(q, 0.0);

    if (q == 1) {
        // Serial-identical path: in-place training on the caller's model
        // with the caller's RNG.  Never cached — a hit would skip the
        // training step the serial loop performs.  The evaluator may have
        // mutated the weights, so drop any memoized utilities (same
        // defensive invariant as the adoption path).
        model.set_dropout_rates(alphas[0]);
        outcome.utilities[0] = evaluator(model, alphas[0], rng);
        cache_.clear();
        has_active_context_ = false;
        return outcome;
    }

    // Within-batch dedup: candidate j with an identical earlier alpha reuses
    // that candidate's result (identical RNG stream => identical utility).
    std::vector<std::size_t> owner(q);
    for (std::size_t j = 0; j < q; ++j) {
        owner[j] = j;
        for (std::size_t i = 0; i < j; ++i) {
            if (alphas[i] == alphas[j]) {
                owner[j] = i;
                break;
            }
        }
    }

    std::vector<char> memoized(q, 0);
    std::vector<std::size_t> live;
    live.reserve(q);
    for (std::size_t j = 0; j < q; ++j) {
        if (owner[j] != j) continue;
        if (config_.cache) {
            const auto it =
                cache_.find(CacheKey{context.key, context.stamp, alphas[j]});
            if (it != cache_.end()) {
                outcome.utilities[j] = it->second;
                memoized[j] = 1;
                ++outcome.cache_hits;
                continue;
            }
        }
        live.push_back(j);
    }

    std::vector<models::ModelHandle> replicas(q);
    auto evaluate_candidate = [&](std::size_t j) {
        models::ModelHandle replica = model.clone();
        replica.set_dropout_rates(alphas[j]);
        Rng candidate_rng(candidate_seed(context, alphas[j]));
        outcome.utilities[j] = evaluator(replica, alphas[j], candidate_rng);
        replicas[j] = std::move(replica);
    };
    if (!live.empty()) {
        std::size_t threads =
            config_.threads == 0 ? parallel_thread_count() : config_.threads;
        threads = std::min(std::max<std::size_t>(threads, 1), live.size());
        const std::size_t grain = (live.size() + threads - 1) / threads;
        parallel_for(0, live.size(), grain,
                     [&](std::size_t lo, std::size_t hi) {
                         for (std::size_t i = lo; i < hi; ++i) {
                             evaluate_candidate(live[i]);
                         }
                     });
    }

    for (std::size_t j = 0; j < q; ++j) {
        if (owner[j] == j) continue;
        outcome.utilities[j] = outcome.utilities[owner[j]];
        ++outcome.cache_hits;  // duplicate proposals are free
    }
    if (config_.cache) {
        for (const std::size_t j : live) {
            cache_.emplace(CacheKey{context.key, context.stamp, alphas[j]},
                           outcome.utilities[j]);
        }
    }
    total_hits_ += outcome.cache_hits;

    outcome.best_index = 0;
    for (std::size_t j = 1; j < q; ++j) {
        if (outcome.utilities[j] > outcome.utilities[outcome.best_index]) {
            outcome.best_index = j;
        }
    }

    if (adopt_winner) {
        const std::size_t source = owner[outcome.best_index];
        if (!replicas[source].net && memoized[source]) {
            // Cross-call cache hit won without a live replica: re-run it to
            // materialize the trained weights (same stream => same result).
            evaluate_candidate(source);
        }
        model.net = std::move(replicas[source].net);
        model.dropout_sites = std::move(replicas[source].dropout_sites);
        // The weights just changed: cached utilities are stale regardless
        // of whether the caller remembers to bump context.stamp.
        cache_.clear();
        has_active_context_ = false;
    }
    (void)rng;  // q > 1 never advances the caller's generator
    return outcome;
}

std::vector<std::pair<Alpha, double>> EvaluationEngine::export_cache() const {
    std::vector<std::pair<Alpha, double>> entries;
    if (!has_active_context_) return entries;
    entries.reserve(cache_.size());
    for (const auto& [key, utility] : cache_) {
        entries.emplace_back(key.alpha, utility);
    }
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    return entries;
}

void EvaluationEngine::import_cache(
    const EvalContext& context,
    const std::vector<std::pair<Alpha, double>>& entries) {
    cache_.clear();
    active_context_ = context.key;
    active_stamp_ = context.stamp;
    has_active_context_ = true;
    if (!config_.cache) return;
    for (const auto& [alpha, utility] : entries) {
        cache_.emplace(CacheKey{context.key, context.stamp, alpha}, utility);
    }
}

BatchOutcome EvaluationEngine::evaluate_points(
    const std::vector<Alpha>& points, const PointEvaluator& evaluator,
    const EvalContext& context) {
    if (points.empty()) {
        throw std::invalid_argument(
            "EvaluationEngine::evaluate_points: empty batch");
    }
    if (!evaluator) {
        throw std::invalid_argument(
            "EvaluationEngine::evaluate_points: no evaluator");
    }
    const std::size_t q = points.size();
    if (config_.cache &&
        (!has_active_context_ || active_context_ != context.key ||
         active_stamp_ != context.stamp)) {
        cache_.clear();
        active_context_ = context.key;
        active_stamp_ = context.stamp;
        has_active_context_ = true;
    }
    BatchOutcome outcome;
    outcome.utilities.assign(q, 0.0);

    // Within-batch dedup + cross-call memo hits, exactly as evaluate_batch;
    // unlike the model path there is no q == 1 special case, because every
    // candidate runs on its own derived RNG stream regardless of batch size.
    std::vector<std::size_t> owner(q);
    for (std::size_t j = 0; j < q; ++j) {
        owner[j] = j;
        for (std::size_t i = 0; i < j; ++i) {
            if (points[i] == points[j]) {
                owner[j] = i;
                break;
            }
        }
    }
    std::vector<std::size_t> live;
    live.reserve(q);
    for (std::size_t j = 0; j < q; ++j) {
        if (owner[j] != j) continue;
        if (config_.cache) {
            const auto it =
                cache_.find(CacheKey{context.key, context.stamp, points[j]});
            if (it != cache_.end()) {
                outcome.utilities[j] = it->second;
                ++outcome.cache_hits;
                continue;
            }
        }
        live.push_back(j);
    }

    if (!live.empty()) {
        auto evaluate_candidate = [&](std::size_t j) {
            Rng rng(candidate_seed(context, points[j]));
            outcome.utilities[j] = evaluator(points[j], rng);
        };
        std::size_t threads =
            config_.threads == 0 ? parallel_thread_count() : config_.threads;
        threads = std::min(std::max<std::size_t>(threads, 1), live.size());
        const std::size_t grain = (live.size() + threads - 1) / threads;
        parallel_for(0, live.size(), grain,
                     [&](std::size_t lo, std::size_t hi) {
                         for (std::size_t i = lo; i < hi; ++i) {
                             evaluate_candidate(live[i]);
                         }
                     });
    }

    for (std::size_t j = 0; j < q; ++j) {
        if (owner[j] == j) continue;
        outcome.utilities[j] = outcome.utilities[owner[j]];
        ++outcome.cache_hits;
    }
    if (config_.cache) {
        for (const std::size_t j : live) {
            cache_.emplace(CacheKey{context.key, context.stamp, points[j]},
                           outcome.utilities[j]);
        }
    }
    total_hits_ += outcome.cache_hits;

    outcome.best_index = 0;
    for (std::size_t j = 1; j < q; ++j) {
        if (outcome.utilities[j] > outcome.utilities[outcome.best_index]) {
            outcome.best_index = j;
        }
    }
    return outcome;
}

}  // namespace bayesft::core
