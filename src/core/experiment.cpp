#include "core/experiment.hpp"

#include <stdexcept>

#include "fault/evaluator.hpp"
#include "utils/logging.hpp"

namespace bayesft::core {

ResultTable ExperimentResult::to_table(const std::string& title) const {
    std::vector<std::string> columns{"sigma"};
    for (const MethodCurve& curve : curves) columns.push_back(curve.method);
    ResultTable table(title, columns);
    for (std::size_t i = 0; i < sigmas.size(); ++i) {
        std::vector<double> row{sigmas[i]};
        for (const MethodCurve& curve : curves) {
            row.push_back(curve.accuracy[i] * 100.0);
        }
        table.add_row(row);
    }
    return table;
}

namespace {

/// Sigma sweep with a custom accuracy metric (standard or FTNA decode).
/// `num_threads` follows the evaluate_metric_under_drift contract: pass 0
/// (pool width) only for metrics that score the module they are handed.
std::vector<double> sweep(
    nn::Module& net, const std::vector<double>& sigmas,
    std::size_t eval_samples, Rng& rng,
    const std::function<double(nn::Module&)>& metric,
    std::size_t num_threads) {
    std::vector<double> curve;
    curve.reserve(sigmas.size());
    for (double sigma : sigmas) {
        const fault::LogNormalDrift drift(sigma);
        curve.push_back(fault::evaluate_metric_under_drift(
                            net, drift, eval_samples, rng, metric,
                            num_threads)
                            .mean_accuracy);
    }
    return curve;
}

}  // namespace

ExperimentResult run_classification_experiment(
    const ModelFactory& factory, const data::Dataset& train_set,
    const data::Dataset& test_set, std::size_t num_classes,
    const ExperimentConfig& config) {
    if (!factory) {
        throw std::invalid_argument("run_classification_experiment: no factory");
    }
    ExperimentResult result;
    result.sigmas = config.sigmas;

    auto standard_metric = [&](nn::Module& m) {
        return nn::evaluate_accuracy(m, test_set.images, test_set.labels);
    };

    if (config.methods.erm) {
        Rng rng(config.seed + 1);
        models::ModelHandle model = factory(num_classes, rng);
        log_info() << "[experiment] training ERM / " << model.name;
        train_erm(model, train_set, config.train, rng);
        result.curves.push_back(
            {"ERM", sweep(*model.net, config.sigmas, config.eval_samples, rng,
                          standard_metric, 0)});
    }
    if (config.methods.ftna) {
        Rng rng(config.seed + 2);
        models::ModelHandle model = factory(config.ftna_code_bits, rng);
        log_info() << "[experiment] training FTNA / " << model.name;
        FtnaClassifier ftna(std::move(model), num_classes,
                            config.ftna_code_bits, rng);
        ftna.train(train_set, config.train, rng);
        auto ftna_metric = [&](nn::Module&) {
            return ftna.evaluate_accuracy(test_set.images, test_set.labels);
        };
        result.curves.push_back(
            {"FTNA", sweep(ftna.network(), config.sigmas, config.eval_samples,
                           rng, ftna_metric, 1)});
    }
    if (config.methods.reram_v) {
        Rng rng(config.seed + 3);
        models::ModelHandle model = factory(num_classes, rng);
        log_info() << "[experiment] training ReRAM-V / " << model.name;
        ReRamVConfig reram = config.reram_v;
        reram.pretrain = config.train;
        train_reram_v(model, train_set, reram, rng);
        result.curves.push_back(
            {"ReRAM-V", sweep(*model.net, config.sigmas, config.eval_samples,
                              rng, standard_metric, 0)});
    }
    if (config.methods.awp) {
        Rng rng(config.seed + 4);
        models::ModelHandle model = factory(num_classes, rng);
        log_info() << "[experiment] training AWP / " << model.name;
        AwpConfig awp = config.awp;
        awp.train = config.train;
        train_awp(model, train_set, awp, rng);
        result.curves.push_back(
            {"AWP", sweep(*model.net, config.sigmas, config.eval_samples, rng,
                          standard_metric, 0)});
    }
    if (config.methods.bayesft) {
        Rng rng(config.seed + 5);
        models::ModelHandle model = factory(num_classes, rng);
        log_info() << "[experiment] running BayesFT search / " << model.name;
        // Hold out part of the training set for the search's utility.
        Rng split_rng(config.seed + 6);
        const data::TrainTestSplit inner =
            data::split(train_set, 0.25, split_rng);
        const BayesFTResult search = bayesft_search(
            model, inner.train, inner.test, config.bayesft, rng);
        result.bayesft_alpha = search.best_alpha;
        result.curves.push_back(
            {"BayesFT", sweep(*model.net, config.sigmas, config.eval_samples,
                              rng, standard_metric, 0)});
    }
    return result;
}

}  // namespace bayesft::core
