#include "core/experiment.hpp"

#include <stdexcept>

#include "core/method.hpp"
#include "fault/evaluator.hpp"
#include "utils/logging.hpp"

namespace bayesft::core {

ResultTable ExperimentResult::to_table(const std::string& title) const {
    std::vector<std::string> columns{"sigma"};
    for (const MethodCurve& curve : curves) columns.push_back(curve.method);
    ResultTable table(title, columns);
    for (std::size_t i = 0; i < sigmas.size(); ++i) {
        std::vector<double> row{sigmas[i]};
        for (const MethodCurve& curve : curves) {
            row.push_back(curve.accuracy[i] * 100.0);
        }
        table.add_row(row);
    }
    return table;
}

namespace {

/// Sigma sweep with a custom accuracy metric (standard or FTNA decode).
/// `num_threads` follows the evaluate_metric_under_drift contract: pass 0
/// (pool width) only for metrics that score the module they are handed.
std::vector<double> sweep(
    nn::Module& net, const std::vector<double>& sigmas,
    std::size_t eval_samples, Rng& rng,
    const std::function<double(nn::Module&)>& metric,
    std::size_t num_threads) {
    std::vector<double> curve;
    curve.reserve(sigmas.size());
    for (double sigma : sigmas) {
        const fault::LogNormalDrift drift(sigma);
        curve.push_back(fault::evaluate_metric_under_drift(
                            net, drift, eval_samples, rng, metric,
                            num_threads)
                            .mean_accuracy);
    }
    return curve;
}

}  // namespace

ExperimentResult run_classification_experiment(
    const ModelFactory& factory, const data::Dataset& train_set,
    const data::Dataset& test_set, std::size_t num_classes,
    const ExperimentConfig& config) {
    if (!factory) {
        throw std::invalid_argument("run_classification_experiment: no factory");
    }
    ExperimentResult result;
    result.sigmas = config.sigmas;

    for (const auto& method : make_methods(config.methods)) {
        Rng rng(config.seed + method->seed_offset());
        const TrainedMethod trained = method->train(
            factory, train_set, test_set, num_classes, config, rng);
        if (!trained.trials.empty()) {
            result.bayesft_trials = trained.trials;
            result.bayesft_trial_points = trained.trial_points;
            result.bayesft_resumed = trained.resumed_trials;
        }
        if (!trained.search_completed) {
            // The search checkpointed out mid-run (stop_after): its model
            // is half-searched state, so skip the sweep — the caller
            // resumes with the same checkpoint path to finish the figure.
            result.bayesft_completed = false;
            break;
        }
        result.curves.push_back(
            {method->name(),
             sweep(*trained.net, config.sigmas, config.eval_samples, rng,
                   trained.metric, trained.sweep_threads)});
        if (!trained.best_alpha.empty()) {
            result.bayesft_alpha = trained.best_alpha;
        }
    }
    return result;
}

}  // namespace bayesft::core
