#pragma once
// Batched candidate-evaluation engine: the service between a proposal rule
// (GP suggest_batch, random sampling, ...) and the expensive train-and-score
// of one dropout configuration alpha.
//
// A batch of q candidates is evaluated concurrently on per-candidate model
// replicas (ModelHandle::clone + deterministic per-candidate RNG streams),
// and the winning candidate's trained replica is adopted as the new model
// state, so the propose/evaluate pipeline is decoupled from the strictly
// serial suggest -> train -> observe loop.
//
// Determinism contract:
//   - q == 1 evaluates in place on the caller's model with the caller's RNG,
//     bit-identical to the historical serial loop.
//   - q > 1 derives each candidate's RNG purely from (context key, stamp,
//     alpha), so results are invariant to thread count and scheduling.
//
// A memoization cache keyed on (context key, stamp, alpha) makes repeated /
// duplicate proposals free; the context key should digest everything else
// the utility depends on (seed nonce, drift sigma set, MC sample count) and
// the stamp must be bumped whenever the underlying model weights change.

#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/trial.hpp"
#include "fault/chaos.hpp"
#include "models/zoo.hpp"
#include "utils/rng.hpp"

namespace bayesft::core {

/// One candidate's dropout-rate vector.
using Alpha = std::vector<double>;

/// Trains/scores one candidate: the handle already has `alpha` installed;
/// the evaluator may train the handle's network in place and must return
/// the candidate's utility using only `rng` for stochastic draws.  Called
/// concurrently on per-candidate replicas when q > 1, so it must not touch
/// shared mutable state outside the handle it is given.
using CandidateEvaluator =
    std::function<double(models::ModelHandle& model, const Alpha& alpha,
                         Rng& rng)>;

/// Trains/scores one self-contained candidate identified only by its
/// encoded search-space point (e.g. a ParamSpace point that the evaluator
/// decodes and builds a model from).  Must derive all stochastic draws from
/// `rng` and touch no shared mutable state; called concurrently.
using PointEvaluator =
    std::function<double(const Alpha& encoded, Rng& rng)>;


/// FNV-1a style mixing used to build engine context keys.  The overloads
/// fold doubles (bitwise), integers, and strings (e.g. a FaultModel's
/// describe() output) into one digest; all are pure functions.
std::uint64_t mix_key(std::uint64_t seed, const double* values,
                      std::size_t count);
std::uint64_t mix_key(std::uint64_t seed, std::uint64_t value);
std::uint64_t mix_key(std::uint64_t seed, std::string_view text);

/// Engine knobs.  An EvaluationEngine instance is NOT thread-safe itself
/// (its memo cache is unsynchronized): drive one engine from one thread;
/// the engine parallelizes the candidate evaluations internally.
struct EngineConfig {
    /// Maximum candidates evaluated concurrently; 0 = thread-pool width.
    std::size_t threads = 0;
    /// Enables the (context, stamp, alpha) -> utility memoization cache.
    bool cache = true;
    /// Fault-tolerant trial execution: isolation, timeout, retries
    /// (docs/robustness.md).  None of it changes a successful evaluation's
    /// result — retried attempts replay the same candidate stream.
    ResilienceConfig resilience;
    /// Failure-injection hook for the chaos torture tests, read from
    /// BAYESFT_CHAOS at config construction (all-zero, i.e. off, when the
    /// variable is unset).
    fault::ChaosSpec chaos = fault::ChaosSpec::from_env();
    /// Distributed evaluation (docs/distributed.md): fork this many
    /// persistent worker processes and farm self-contained point
    /// evaluations to them over the run-store wire protocol.  0 evaluates
    /// in-process (the default); >= 1 always exercises the worker path,
    /// so `workers = 1` already proves the pipe protocol.  Like `threads`
    /// this is result-invariant — the search outcome is bit-identical for
    /// every worker count.  Only evaluate_points supports it (the
    /// evaluator must be stable across calls and candidates must be
    /// self-contained); evaluate_batch ignores it.  Deliberately last: the
    /// existing aggregate initializations {threads, cache, ...} must keep
    /// their meaning.
    std::size_t workers = 0;
};

/// Identifies the evaluation environment for caching and RNG derivation.
struct EvalContext {
    /// Digest of everything the utility depends on besides alpha and the
    /// model weights (seed nonce, fault-model configuration, MC samples,
    /// epochs, ...).  Build it with objective_digest + mix_key.
    std::uint64_t key = 0;
    /// Version of the model weights; bump after every adoption/training so
    /// stale utilities are never reused.  Self-contained point evaluations
    /// (evaluate_points) have no evolving weights, so their callers keep the
    /// stamp constant and the memo cache stays valid across the whole run.
    std::uint64_t stamp = 0;
};

/// Deterministic RNG seed for one candidate: a pure function of the
/// evaluation context and the encoded point, so duplicate proposals draw
/// identical streams (making the memo cache sound), results are invariant
/// to thread count and evaluation order, and a search can re-materialize
/// its winner exactly (arch_search rebuilds the best model this way).
std::uint64_t candidate_seed(const EvalContext& context, const Alpha& point);

/// Result of one batch evaluation.
struct BatchOutcome {
    /// Aligned with the alphas argument; a failed (quarantined) candidate
    /// holds NaN — read `statuses` for the failure class.
    std::vector<double> utilities;
    /// Aligned with the alphas argument: kOk, or why the candidate's
    /// evaluation was quarantined after exhausting its retries.
    std::vector<TrialStatus> statuses;
    /// Argmax utility over the successful candidates (first on ties); 0
    /// when every candidate failed.
    std::size_t best_index = 0;
    /// Candidates served without a live evaluation: within-batch duplicates
    /// (always) plus cross-call map hits, which require the caller to hold
    /// (context.key, context.stamp) constant across calls — i.e. the model
    /// weights did not change, as in pure scoring sweeps.
    std::size_t cache_hits = 0;
};

class WorkerPool;

class EvaluationEngine {
public:
    explicit EvaluationEngine(EngineConfig config = {});
    // Out of line: the worker pool is an incomplete type here.
    ~EvaluationEngine();

    /// Evaluates `alphas` against the current state of `model`.
    ///
    /// Batch size 1 runs in place on `model` with `rng` (serial-identical);
    /// larger batches clone one replica per distinct candidate and evaluate
    /// them in parallel.  With `adopt_winner`, the best candidate's trained
    /// replica replaces `model`'s network (batch 1 already trained in
    /// place).  `rng` is never advanced by the q > 1 path.
    BatchOutcome evaluate_batch(models::ModelHandle& model,
                                const std::vector<Alpha>& alphas,
                                const CandidateEvaluator& evaluator, Rng& rng,
                                const EvalContext& context, bool adopt_winner);

    /// Evaluates self-contained candidates identified only by their encoded
    /// search-space points (no shared base model): every candidate — even in
    /// a batch of one — runs on the deterministic candidate_seed(context,
    /// point) stream, so the outcome is a pure function of (context, points)
    /// for every batch size and thread count, and the memo cache serves
    /// duplicate proposals across the whole run while the caller holds
    /// (context.key, context.stamp) fixed.  Used by arch_search, where each
    /// candidate builds and trains its own model from a ParamPoint.
    BatchOutcome evaluate_points(const std::vector<Alpha>& points,
                                 const PointEvaluator& evaluator,
                                 const EvalContext& context);

    /// Memoized (point -> utility) entries of the active (context, stamp),
    /// sorted by point for a deterministic order, so a self-contained
    /// search (constant stamp, see evaluate_points) can persist its memo
    /// cache across process restarts.  Empty when no context is active.
    std::vector<std::pair<Alpha, double>> export_cache() const;
    /// Seeds the memo cache with entries for `context`, replacing whatever
    /// was cached before.  Entries are only ever served back while the
    /// caller evaluates under the same (context.key, context.stamp).
    void import_cache(const EvalContext& context,
                      const std::vector<std::pair<Alpha, double>>& entries);

    /// Lifetime total of evaluations served without running the evaluator
    /// (within-batch duplicates + cross-call map hits).
    std::size_t cache_hits() const { return total_hits_; }
    /// Currently memoized (context, stamp, alpha) -> utility entries.
    std::size_t cache_entries() const { return cache_.size(); }
    /// Drops all memoized utilities (e.g. after mutating model weights
    /// outside the engine).
    void clear_cache() { cache_.clear(); }

    /// True once the spawn watchdog tripped: repeated child-spawn failures
    /// permanently degraded this engine back to in-process evaluation
    /// (ResilienceConfig::isolate is ignored from then on).
    bool isolation_degraded() const { return isolation_disabled_; }

    /// True once the worker pool's spawn watchdog tripped: repeated
    /// worker-spawn failures permanently degraded this engine back to
    /// in-process evaluation (EngineConfig::workers is ignored from then
    /// on).  Results are unchanged either way.
    bool distribution_degraded() const { return distribution_disabled_; }

private:
    /// Forked-child evaluation of the `live` candidate indices (the
    /// crash-isolation path of evaluate_points): one child per attempt,
    /// results over a pipe in the run-store JSONL wire format, SIGKILL at
    /// the trial deadline, deterministic retry backoff, and the spawn
    /// watchdog that falls back to in-process evaluation.
    void evaluate_points_isolated(const std::vector<Alpha>& points,
                                  const PointEvaluator& evaluator,
                                  const EvalContext& context,
                                  const std::vector<std::size_t>& live,
                                  BatchOutcome& outcome);
    struct CacheKey {
        std::uint64_t context = 0;
        std::uint64_t stamp = 0;
        Alpha alpha;
        bool operator==(const CacheKey& other) const {
            return context == other.context && stamp == other.stamp &&
                   alpha == other.alpha;
        }
    };
    struct CacheKeyHash {
        std::size_t operator()(const CacheKey& key) const;
    };

    EngineConfig config_;
    std::unordered_map<CacheKey, double, CacheKeyHash> cache_;
    std::size_t total_hits_ = 0;
    // Entries from a superseded (context, stamp) can never hit again (the
    // stamp only moves forward when weights change), so the cache is
    // dropped on context change to stay O(q) instead of growing per batch.
    std::uint64_t active_context_ = 0;
    std::uint64_t active_stamp_ = 0;
    bool has_active_context_ = false;
    // Spawn watchdog (docs/robustness.md): consecutive fork/pipe failures;
    // at the threshold, isolation is disabled for the rest of the run.
    std::size_t spawn_failures_ = 0;
    bool isolation_disabled_ = false;
    // Distributed evaluation (docs/distributed.md): the pool of persistent
    // forked workers, created lazily on the first distributed
    // evaluate_points call (binding that call's evaluator) and kept for
    // the engine's lifetime; disabled for the rest of the run when the
    // pool's spawn watchdog trips.
    std::unique_ptr<WorkerPool> pool_;
    bool distribution_disabled_ = false;
};

}  // namespace bayesft::core
