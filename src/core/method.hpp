#pragma once
// The method zoo behind one interface: each paper method (ERM / FTNA /
// ReRAM-V / AWP / BayesFT) knows how to train itself on a task and hand
// back the module + metric that the drift sweep should score, replacing
// the inline if-chains that used to live in run_classification_experiment.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/experiment.hpp"

namespace bayesft::core {

/// What a trained method exposes to the sigma sweep.
struct TrainedMethod {
    /// Owns whatever the metric closure references (model, FTNA wrapper).
    std::shared_ptr<void> holder;
    /// Network whose weights the sweep perturbs.
    nn::Module* net = nullptr;
    /// Scores the (possibly replicated) module it is handed.
    std::function<double(nn::Module&)> metric;
    /// Thread budget for evaluate_metric_under_drift: 0 (pool width) only
    /// when `metric` scores the module it is handed; 1 when it closes over
    /// shared state (FTNA decoding).
    std::size_t sweep_threads = 0;
    /// Best dropout rates (BayesFT only).
    std::vector<double> best_alpha;
    /// Full BO trial history (BayesFT only) for the run store, with the
    /// decoded point strings aligned to it.
    std::vector<bayesopt::Trial> trials;
    std::vector<std::string> trial_points;
    /// False when the search checkpointed out early (stop_after); the
    /// returned net is mid-search state and must not be swept.
    bool search_completed = true;
    /// Leading trials restored from a checkpoint by the search.
    std::size_t resumed_trials = 0;
};

/// One training method of the paper's comparison.
class Method {
public:
    virtual ~Method() = default;
    Method() = default;
    Method(const Method&) = delete;
    Method& operator=(const Method&) = delete;

    /// Column label in the figures ("ERM", "BayesFT", ...).
    virtual std::string name() const = 0;

    /// Per-method RNG stream offset added to ExperimentConfig::seed
    /// (stable across method subsets, so disabling one method does not
    /// reshuffle the others' streams).
    virtual std::uint64_t seed_offset() const = 0;

    /// Builds and trains the method's model on `train_set`; `rng` is the
    /// method's private stream and continues into the caller's sweep.
    virtual TrainedMethod train(const ModelFactory& factory,
                                const data::Dataset& train_set,
                                const data::Dataset& test_set,
                                std::size_t num_classes,
                                const ExperimentConfig& config,
                                Rng& rng) const = 0;
};

/// The enabled methods, in the paper's column order.
std::vector<std::unique_ptr<Method>> make_methods(const MethodSet& set);

}  // namespace bayesft::core
